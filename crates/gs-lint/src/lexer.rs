//! A small Rust lexer: enough token fidelity for source-level lints.
//!
//! This is not a compiler frontend — it produces a flat token stream with
//! line numbers plus a side list of comments (for `// gs-lint: allow(...)`
//! suppressions). What it must get *right*, because the lints pattern-match
//! on identifiers and string literals, is everything that could make a
//! naive scanner misread where code ends and text begins:
//!
//! * raw strings `r"…"` / `r#"…"#` (any hash depth) and their byte forms,
//! * nested block comments `/* /* */ */`,
//! * lifetimes (`'a`) vs char literals (`'a'`, `'\''`, `'\u{1F600}'`),
//! * numeric literals (`1.0e-3`, `0xFF_u64`, `0..n` stays three tokens).

/// What kind of token this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, `r#type`).
    Ident,
    /// A lifetime such as `'a` (without the quote).
    Lifetime,
    /// String literal (cooked, raw, or byte); `text` is the body without
    /// quotes/hashes and without unescaping.
    Str,
    /// Character or byte literal; `text` is the body without quotes.
    Char,
    /// Numeric literal, suffix included.
    Num,
    /// A single punctuation character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// A line comment's 1-based line and body (text after `//`), or a block
/// comment's starting line and full body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Lexer output: the token stream and the comments that were skipped.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Unterminated constructs consume to end of input
/// rather than erroring: the linter must degrade gracefully on any file
/// the real compiler would reject anyway.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Lexed {
        while let Some(&b) = self.src.get(self.pos) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_or_byte_prefix() => {}
                b'"' => self.string(self.pos),
                b'\'' => self.quote(),
                b if b.is_ascii_digit() => self.number(),
                b if is_ident_start(b) => self.ident(),
                _ => {
                    self.push(TokKind::Punct, (b as char).to_string(), self.line);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    /// Advances past `n` bytes, counting newlines.
    fn advance(&mut self, n: usize) {
        for _ in 0..n {
            if self.src.get(self.pos) == Some(&b'\n') {
                self.line += 1;
            }
            self.pos += 1;
        }
    }

    fn line_comment(&mut self) {
        let start = self.pos + 2;
        let mut end = start;
        while end < self.src.len() && self.src[end] != b'\n' {
            end += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.out.comments.push(Comment {
            line: self.line,
            text,
        });
        self.pos = end;
    }

    /// Block comment with nesting, per the Rust reference.
    fn block_comment(&mut self) {
        let line = self.line;
        let start = self.pos + 2;
        self.advance(2);
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                depth += 1;
                self.advance(2);
            } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.advance(2);
            } else {
                self.advance(1);
            }
        }
        let end = self.pos.saturating_sub(2).max(start);
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.out.comments.push(Comment { line, text });
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, and raw
    /// identifiers `r#ident`. Returns true if it consumed something;
    /// false means the leading `r`/`b` is an ordinary identifier start.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let b0 = self.src[self.pos];
        // b'x' byte char
        if b0 == b'b' && self.peek(1) == Some(b'\'') {
            self.pos += 1; // skip the b; quote() handles the rest as a char
            self.quote_char();
            return true;
        }
        // b"..." byte string
        if b0 == b'b' && self.peek(1) == Some(b'"') {
            self.pos += 1;
            self.string(self.pos);
            return true;
        }
        // raw forms: r" r# br" br#
        let (hash_at, is_raw) = match (b0, self.peek(1)) {
            (b'r', Some(b'"')) | (b'r', Some(b'#')) => (1, true),
            (b'b', Some(b'r')) if matches!(self.peek(2), Some(b'"') | Some(b'#')) => (2, true),
            _ => (0, false),
        };
        if !is_raw {
            return false;
        }
        let mut hashes = 0usize;
        let mut i = self.pos + hash_at;
        while self.src.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        if self.src.get(i) != Some(&b'"') {
            // r#ident — a raw identifier, not a string
            if hashes == 1
                && b0 == b'r'
                && self.src.get(i).map(|&b| is_ident_start(b)) == Some(true)
            {
                let line = self.line;
                self.pos = i;
                let start = self.pos;
                while self.pos < self.src.len() && is_ident_continue(self.src[self.pos]) {
                    self.pos += 1;
                }
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.push(TokKind::Ident, text, line);
                return true;
            }
            return false;
        }
        // raw string: scan for `"` followed by `hashes` hashes
        let line = self.line;
        self.advance(i + 1 - self.pos); // past opening quote
        let body_start = self.pos;
        loop {
            match self.peek(0) {
                None => break,
                Some(b'"') => {
                    let mut ok = true;
                    for h in 0..hashes {
                        if self.peek(1 + h) != Some(b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        let body =
                            String::from_utf8_lossy(&self.src[body_start..self.pos]).into_owned();
                        self.advance(1 + hashes);
                        self.push(TokKind::Str, body, line);
                        return true;
                    }
                    self.advance(1);
                }
                _ => self.advance(1),
            }
        }
        let body = String::from_utf8_lossy(&self.src[body_start..self.pos]).into_owned();
        self.push(TokKind::Str, body, line);
        true
    }

    /// Cooked string starting at the opening quote (`self.pos` is `"`).
    fn string(&mut self, _open: usize) {
        let line = self.line;
        self.advance(1);
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.advance(2),
                b'"' => break,
                _ => self.advance(1),
            }
        }
        let body = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.advance(1); // closing quote (or EOF no-op)
        self.push(TokKind::Str, body, line);
    }

    /// `'` — lifetime or char literal. A lifetime is `'ident` NOT followed
    /// by a closing `'`; everything else is a char literal.
    fn quote(&mut self) {
        // lifetime lookahead: 'ident not followed by '
        if self
            .peek(1)
            .map(|b| is_ident_start(b) && b != b'\'')
            .unwrap_or(false)
        {
            let mut i = self.pos + 1;
            while self.src.get(i).map(|&b| is_ident_continue(b)) == Some(true) {
                i += 1;
            }
            if self.src.get(i) != Some(&b'\'') {
                let line = self.line;
                let text = String::from_utf8_lossy(&self.src[self.pos + 1..i]).into_owned();
                self.pos = i;
                self.push(TokKind::Lifetime, text, line);
                return;
            }
        }
        self.quote_char();
    }

    /// Char literal starting at `'` (escapes included).
    fn quote_char(&mut self) {
        let line = self.line;
        self.advance(1);
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.advance(2),
                b'\'' => break,
                _ => self.advance(1),
            }
        }
        let body = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.advance(1);
        self.push(TokKind::Char, body, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        // integer part (covers 0x/0o/0b prefixes via the alnum loop)
        while self
            .peek(0)
            .map(|b| b.is_ascii_alphanumeric() || b == b'_')
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        // fraction: a dot followed by a digit (so `0..n` is untouched)
        if self.peek(0) == Some(b'.') && self.peek(1).map(|b| b.is_ascii_digit()).unwrap_or(false) {
            self.pos += 1;
            while self
                .peek(0)
                .map(|b| b.is_ascii_alphanumeric() || b == b'_')
                .unwrap_or(false)
            {
                self.pos += 1;
            }
        }
        // exponent sign: `1e-3` — the alnum loop stops at `-`
        if matches!(
            self.src.get(self.pos.wrapping_sub(1)),
            Some(b'e') | Some(b'E')
        ) && matches!(self.peek(0), Some(b'+') | Some(b'-'))
            && self.peek(1).map(|b| b.is_ascii_digit()).unwrap_or(false)
        {
            self.pos += 1;
            while self
                .peek(0)
                .map(|b| b.is_ascii_alphanumeric() || b == b'_')
                .unwrap_or(false)
            {
                self.pos += 1;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Num, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.peek(0).map(is_ident_continue).unwrap_or(false) {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a.b(c);");
        assert_eq!(toks[0], (TokKind::Ident, "let".into()));
        assert_eq!(toks[3], (TokKind::Ident, "a".into()));
        assert_eq!(toks[4], (TokKind::Punct, ".".into()));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let toks = kinds(r####"let s = r#"has "quotes" inside"#;"####);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t == r#"has "quotes" inside"#));
        let toks = kinds("let s = r\"plain raw\";");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t == "plain raw"));
        // double-hash raw string containing a single-hash terminator-lookalike
        let toks = kinds("r##\"inner \"# still going\"##");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t == "inner \"# still going"));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert_eq!(toks[1], (TokKind::Ident, "type".into()));
    }

    #[test]
    fn nested_block_comments_are_skipped_whole() {
        let lexed = lex("a /* outer /* inner */ still comment */ b");
        let idents: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(idents, ["a", "b"]);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let q = '\\''; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2, "two 'a lifetimes: {toks:?}");
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(chars.len(), 2, "char 'a' and escaped quote: {toks:?}");
    }

    #[test]
    fn unicode_escape_in_char() {
        let toks = kinds(r"let c = '\u{1F600}';");
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Char));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = kinds("for i in 0..n {}");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "0"));
        assert_eq!(
            toks.iter()
                .filter(|(k, t)| *k == TokKind::Punct && t == ".")
                .count(),
            2
        );
        let toks = kinds("let x = 1.5e-3f64 + 0xFF_u64;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Num && t == "1.5e-3f64"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Num && t == "0xFF_u64"));
    }

    #[test]
    fn line_comments_captured_with_lines() {
        let lexed = lex("x\n// gs-lint: allow(L001 because reasons)\ny");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("allow(L001"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r#"let a = b"bytes"; let c = b'x';"#);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t == "bytes"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "x"));
    }

    #[test]
    fn multiline_string_tracks_lines() {
        let lexed = lex("let s = \"a\nb\";\nlet t = 1;");
        let num = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Num)
            .unwrap();
        assert_eq!(num.line, 3);
    }
}
