//! Cross-backend analytical equivalence (the GRIN→GRAPE loader contract):
//! fragments loaded through GRIN from *any* storage backend — Mock (array
//! and iterator-only), Vineyard, GART, GraphAr — must yield the same
//! PageRank/BFS/WCC results as a direct edge-list load.

use gs_gart::GartStore;
use gs_grape::{algorithms, GrapeEngine, GrinProjection};
use gs_graph::data::PropertyGraphData;
use gs_graph::VId;
use gs_grin::graph::mock::MockGraph;
use gs_grin::GrinGraph;
use gs_vineyard::VineyardGraph;
use proptest::prelude::*;

/// Deterministic pseudo-random digraph (xorshift; no RNG dependency so the
/// fixture is identical on every platform).
fn random_edges(n: u64, m: usize, seed: u64) -> Vec<(u64, u64)> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..m).map(|_| (next() % n, next() % n)).collect()
}

fn to_vids(edges: &[(u64, u64)]) -> Vec<(VId, VId)> {
    edges.iter().map(|&(s, d)| (VId(s), VId(d))).collect()
}

fn close(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-12)
}

/// Asserts the GRIN-loaded engine agrees with the edge-list-loaded baseline
/// on PageRank, BFS, and (over the symmetrized projection) WCC.
fn assert_backend_matches_baseline(
    name: &str,
    store: &dyn GrinGraph,
    n: usize,
    edges: &[(u64, u64)],
    k: usize,
) {
    let pairs = to_vids(edges);
    let baseline = GrapeEngine::from_edges(n, &pairs, k);
    let (engine, space) = GrapeEngine::from_grin(store, &GrinProjection::all(), k).unwrap();
    assert_eq!(space.total(), n, "{name}: vertex space size");

    let pr = algorithms::pagerank(&engine, 0.85, 20);
    let pr_base = algorithms::pagerank(&baseline, 0.85, 20);
    assert!(close(&pr, &pr_base), "{name}: pagerank diverges");

    assert_eq!(
        algorithms::bfs(&engine, VId(0)),
        algorithms::bfs(&baseline, VId(0)),
        "{name}: bfs diverges"
    );

    let (sym, _) = GrapeEngine::from_grin(store, &GrinProjection::all().symmetrized(), k).unwrap();
    let mut und = pairs.clone();
    und.extend(pairs.iter().map(|&(s, d)| (d, s)));
    let sym_base = GrapeEngine::from_edges(n, &und, k);
    assert_eq!(
        algorithms::wcc(&sym),
        algorithms::wcc(&sym_base),
        "{name}: wcc diverges"
    );
}

#[test]
fn every_backend_loads_equivalent_fragments() {
    let n = 120usize;
    let edges = random_edges(n as u64, 600, 42);
    let triples: Vec<(u64, u64, f64)> = edges.iter().map(|&(s, d)| (s, d, 1.0)).collect();
    let data = PropertyGraphData::from_edge_list(n, &edges);

    let mock = MockGraph::new(n, &triples);
    let mock_iter = MockGraph::new_iter_only(n, &triples);
    let vineyard = VineyardGraph::build(&data).unwrap();
    let gart = GartStore::from_data(&data).unwrap();
    let gart_snap = gart.snapshot();
    let dir = std::env::temp_dir().join(format!("gs-grin-analytics-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    gs_graphar::write_archive(&dir, &data).unwrap();
    let graphar = gs_graphar::GraphArStore::open(&dir).unwrap();

    for k in [1usize, 3] {
        assert_backend_matches_baseline("mock", &mock, n, &edges, k);
        assert_backend_matches_baseline("mock-iter-only", &mock_iter, n, &edges, k);
        assert_backend_matches_baseline("vineyard", &vineyard, n, &edges, k);
        assert_backend_matches_baseline("gart", &gart_snap, n, &edges, k);
        assert_backend_matches_baseline("graphar", &graphar, n, &edges, k);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The §8 anti-fraud analytics preset, end to end: compose the deployment,
/// take its analytics engine, load the deployment-native store (GART)
/// through GRIN, and run a built-in algorithm.
#[test]
fn preset_analytics_runs_through_the_deployment_store() {
    let deployment = gs_flex::FlexBuild::antifraud_analytics_preset().unwrap();
    let analytics = deployment
        .analytics_engine(2)
        .expect("antifraud preset deploys GRAPE");
    assert_eq!(analytics.name(), "grape");

    let n = 80usize;
    let edges = random_edges(n as u64, 320, 7);
    let data = PropertyGraphData::from_edge_list(n, &edges);
    let store = GartStore::from_data(&data).unwrap();
    let snap = store.snapshot();

    let (engine, space) = analytics.load(&snap, &GrinProjection::all()).unwrap();
    assert_eq!(space.total(), n);
    let pr = algorithms::pagerank(&engine, 0.85, 15);
    let baseline = GrapeEngine::from_edges(n, &to_vids(&edges), 2);
    let pr_base = algorithms::pagerank(&baseline, 0.85, 15);
    assert!(close(&pr, &pr_base), "preset pagerank diverges");
}

/// Multi-label projections flatten each label into a contiguous id block;
/// cross-label edges land between the right blocks.
#[test]
fn multi_label_projection_flattens_id_blocks() {
    use gs_graph::schema::GraphSchema;
    use gs_graph::{LabelId, Value, ValueType};
    let mut schema = GraphSchema::new();
    let account = schema.add_vertex_label("Account", &[("name", ValueType::Str)]);
    let item = schema.add_vertex_label("Item", &[]);
    let buy = schema.add_edge_label("BUY", account, item, &[]);
    let mut data = PropertyGraphData::new(schema);
    for a in 0..3u64 {
        data.add_vertex(account, a, vec![Value::Str(format!("acct{a}"))]);
    }
    for i in 0..2u64 {
        data.add_vertex(item, i, vec![]);
    }
    let purchases = [(0u64, 0u64), (1, 0), (2, 1)];
    for &(a, i) in &purchases {
        data.add_edge(buy, a, i, vec![]);
    }
    let store = VineyardGraph::build(&data).unwrap();

    let (engine, space) =
        GrapeEngine::from_grin(&store, &GrinProjection::all().symmetrized(), 2).unwrap();
    assert_eq!(space.total(), 5);
    assert_eq!(space.base(account), Some(0));
    assert_eq!(space.base(item), Some(3));
    assert_eq!(space.label_of(VId(4)), Some((item, VId(1))));
    assert_eq!(space.label_of(VId(5)), None);

    // every purchase ties its account and item into one WCC component
    let comps = algorithms::wcc(&engine);
    for &(a, i) in &purchases {
        let ga = space.global_of(account, VId(a)).unwrap();
        let gi = space.global_of(item, VId(i)).unwrap();
        assert_eq!(comps[ga.index()], comps[gi.index()], "acct {a} ↔ item {i}");
    }
    // an unused label id is absent from the space
    assert_eq!(space.base(LabelId(9)), None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random digraphs: array-capable and iterator-only stores load
    /// fragments that agree with the edge-list baseline.
    #[test]
    fn random_graphs_load_equivalently(
        n in 2usize..40,
        edges in proptest::collection::vec((0u64..40, 0u64..40), 0..120),
        k in 1usize..4,
    ) {
        let edges: Vec<(u64, u64)> = edges
            .into_iter()
            .map(|(s, d)| (s % n as u64, d % n as u64))
            .collect();
        let triples: Vec<(u64, u64, f64)> = edges.iter().map(|&(s, d)| (s, d, 1.0)).collect();
        let pairs = to_vids(&edges);
        let baseline = GrapeEngine::from_edges(n, &pairs, k);
        let pr_base = algorithms::pagerank(&baseline, 0.85, 12);

        let mock = MockGraph::new(n, &triples);
        let (fast, _) = GrapeEngine::from_grin(&mock, &GrinProjection::all(), k).unwrap();
        prop_assert!(close(&algorithms::pagerank(&fast, 0.85, 12), &pr_base));

        let iter_only = MockGraph::new_iter_only(n, &triples);
        let (slow, _) = GrapeEngine::from_grin(&iter_only, &GrinProjection::all(), k).unwrap();
        prop_assert!(close(&algorithms::pagerank(&slow, 0.85, 12), &pr_base));

        let data = PropertyGraphData::from_edge_list(n, &edges);
        let vineyard = VineyardGraph::build(&data).unwrap();
        let (vy, _) = GrapeEngine::from_grin(&vineyard, &GrinProjection::all(), k).unwrap();
        prop_assert!(close(&algorithms::pagerank(&vy, 0.85, 12), &pr_base));
    }
}
