/root/repo/target/debug/deps/gs_learn-ac035c3ddd48d874.d: crates/gs-learn/src/lib.rs crates/gs-learn/src/ncn.rs crates/gs-learn/src/pipeline.rs crates/gs-learn/src/sage.rs crates/gs-learn/src/sampler.rs crates/gs-learn/src/tensor.rs

/root/repo/target/debug/deps/gs_learn-ac035c3ddd48d874: crates/gs-learn/src/lib.rs crates/gs-learn/src/ncn.rs crates/gs-learn/src/pipeline.rs crates/gs-learn/src/sage.rs crates/gs-learn/src/sampler.rs crates/gs-learn/src/tensor.rs

crates/gs-learn/src/lib.rs:
crates/gs-learn/src/ncn.rs:
crates/gs-learn/src/pipeline.rs:
crates/gs-learn/src/sage.rs:
crates/gs-learn/src/sampler.rs:
crates/gs-learn/src/tensor.rs:
