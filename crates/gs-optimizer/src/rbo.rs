//! Rule-based optimization: the two headline rules from §5.2.
//!
//! * **FilterPushIntoMatch** ([`push_filters`], logical → logical): SELECT
//!   conjuncts that constrain a single pattern vertex/edge move into the
//!   pattern (and thence into scans/expands), shrinking intermediate results
//!   and enabling index lookups — the 279× of Fig. 7(e).
//! * **EdgeVertexFusion** ([`fuse_expand_get_vertex`], physical → physical):
//!   an `EXPAND_EDGE` whose produced edge is only consumed by the following
//!   `GET_VERTEX` fuses into one operator, eliminating the intermediate
//!   edge materialisation — the 2.9× of Fig. 7(e).

use gs_ir::expr::{BinOp, Expr};
use gs_ir::logical::{LogicalOp, LogicalPlan};
use gs_ir::physical::{ExpandOut, PhysicalOp, PhysicalPlan};
use gs_ir::Result;

/// Splits an expression into its top-level AND conjuncts.
fn conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            let mut v = conjuncts(lhs);
            v.extend(conjuncts(rhs));
            v
        }
        other => vec![other.clone()],
    }
}

fn conjoin(mut es: Vec<Expr>) -> Option<Expr> {
    let mut acc = es.pop()?;
    while let Some(e) = es.pop() {
        acc = Expr::bin(BinOp::And, e, acc);
    }
    Some(acc)
}

/// The single column an expression constrains, if exactly one.
fn single_column(e: &Expr) -> Option<usize> {
    let mut cols = Vec::new();
    e.referenced_columns(&mut cols);
    cols.sort_unstable();
    cols.dedup();
    if cols.len() == 1 {
        Some(cols[0])
    } else {
        None
    }
}

/// FilterPushIntoMatch: pushes single-alias SELECT conjuncts that follow a
/// `Match` (or `ScanVertex`) into the pattern vertex/edge predicates.
pub fn push_filters(plan: &LogicalPlan) -> Result<LogicalPlan> {
    let mut out = plan.clone();
    let mut i = 0;
    while i < out.ops.len() {
        let LogicalOp::Select { predicate } = &out.ops[i] else {
            i += 1;
            continue;
        };
        // the op this select follows must be a Match or ScanVertex
        if i == 0 {
            i += 1;
            continue;
        }
        let layout = out.layouts[i].clone(); // layout feeding the select
        let parts = conjuncts(predicate);
        let mut kept: Vec<Expr> = Vec::new();
        let mut pushed: Vec<(usize, Expr)> = Vec::new(); // (column, col0-form)
        for c in parts {
            match single_column(&c) {
                Some(col) => {
                    // rewrite to the column-0 convention used by pattern preds
                    let rewritten = c
                        .remap_columns(&|x| if x == col { Some(0) } else { None })
                        .expect("single column remap");
                    pushed.push((col, rewritten));
                }
                None => kept.push(c),
            }
        }
        if pushed.is_empty() {
            i += 1;
            continue;
        }
        // attach to the producing op
        let prev = i - 1;
        let mut leftovers: Vec<Expr> = Vec::new();
        match &mut out.ops[prev] {
            LogicalOp::Match { pattern } => {
                for (col, pred) in pushed {
                    let alias = layout.aliases().nth(col).unwrap().to_string();
                    if let Some(vi) = pattern.vertex_index(&alias) {
                        pattern.and_vertex_predicate(vi, pred);
                    } else if let Some(ei) = pattern
                        .edges
                        .iter()
                        .position(|e| e.alias.as_deref() == Some(alias.as_str()))
                    {
                        pattern.and_edge_predicate(ei, pred);
                    } else {
                        // alias predates this match; restore original form
                        leftovers.push(
                            pred.remap_columns(&|x| if x == 0 { Some(col) } else { None })
                                .unwrap(),
                        );
                    }
                }
            }
            LogicalOp::ScanVertex {
                alias, predicate, ..
            } => {
                for (col, pred) in pushed {
                    let name = layout.aliases().nth(col).unwrap();
                    if name == alias {
                        *predicate = Some(match predicate.take() {
                            Some(p) => Expr::bin(BinOp::And, p, pred),
                            None => pred,
                        });
                    } else {
                        leftovers.push(
                            pred.remap_columns(&|x| if x == 0 { Some(col) } else { None })
                                .unwrap(),
                        );
                    }
                }
            }
            _ => {
                // cannot push past this op; restore
                for (col, pred) in pushed {
                    leftovers.push(
                        pred.remap_columns(&|x| if x == 0 { Some(col) } else { None })
                            .unwrap(),
                    );
                }
            }
        }
        kept.extend(leftovers);
        match conjoin(kept) {
            Some(residual) => {
                out.ops[i] = LogicalOp::Select {
                    predicate: residual,
                };
                i += 1;
            }
            None => {
                out.ops.remove(i);
                out.layouts.remove(i + 1);
            }
        }
    }
    Ok(out)
}

/// EdgeVertexFusion on a physical plan: rewrites
/// `Expand{out: Edge} ; GetVertex{take_dst: true}` pairs whose edge column
/// is never referenced again into a single fused expand, compacting the
/// record by one column.
pub fn fuse_expand_get_vertex(plan: &PhysicalPlan) -> PhysicalPlan {
    let mut ops = plan.ops.clone();
    let mut layout = plan.layout.clone();
    let mut i = 0;
    // track the record width entering each op to locate appended columns
    'outer: while i + 1 < ops.len() {
        let widths = widths_before(&ops);
        let (
            PhysicalOp::Expand {
                src_col,
                src_label,
                elabel,
                dir,
                predicate: epred,
                out: ExpandOut::Edge,
            },
            PhysicalOp::GetVertex {
                edge_col,
                label,
                predicate: vpred,
                take_dst: true,
            },
        ) = (&ops[i], &ops[i + 1])
        else {
            i += 1;
            continue;
        };
        let ecol = widths[i]; // the column Expand appends
        if *edge_col != ecol || epred.is_some() {
            i += 1;
            continue;
        }
        // the edge column must not survive to the plan's output: a later
        // Project rebuilds the record (and, if it referenced the edge,
        // remapping below fails); with no Project the edge column flows
        // straight into the result set and fusing would drop it.
        if !ops[i + 2..]
            .iter()
            .any(|op| matches!(op, PhysicalOp::Project { .. }))
        {
            i += 1;
            continue;
        }
        // the edge column must not be referenced by any later op
        let map = |x: usize| {
            if x == ecol {
                None
            } else if x > ecol {
                Some(x - 1)
            } else {
                Some(x)
            }
        };
        let mut remapped = Vec::with_capacity(ops.len() - i - 2);
        for later in &ops[i + 2..] {
            match later.remap_columns(&map) {
                Some(op) => remapped.push(op),
                None => {
                    i += 1;
                    continue 'outer;
                }
            }
        }
        let fused = PhysicalOp::Expand {
            src_col: *src_col,
            src_label: *src_label,
            elabel: *elabel,
            dir: *dir,
            predicate: vpred.clone(),
            out: ExpandOut::VertexFused { label: *label },
        };
        ops.splice(i..i + 2, std::iter::once(fused));
        let tail = ops.len() - remapped.len();
        ops.truncate(tail);
        ops.extend(remapped);
        // the final layout loses nothing when later ops survived remapping
        // (they never referenced the edge column), unless the edge column
        // itself survived to the output layout — only possible when no
        // Project follows; rebuild defensively.
        layout = rebuild_layout_after_fusion(&layout);
        i += 1;
    }
    PhysicalPlan { ops, layout }
}

/// Record width entering each op (source width 0; each appending op adds 1;
/// Project resets to its item count).
fn widths_before(ops: &[PhysicalOp]) -> Vec<usize> {
    let mut w = 0usize;
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        out.push(w);
        match op {
            PhysicalOp::Project { items } => w = items.len(),
            op if op.appends_column() => w += 1,
            _ => {}
        }
    }
    out
}

fn rebuild_layout_after_fusion(layout: &gs_ir::record::Layout) -> gs_ir::record::Layout {
    // Fusion only fires when a later Project rebuilds the record without
    // the edge column (enforced above), so the output layout is unchanged.
    // Hook kept for clarity.
    let mut nl = gs_ir::record::Layout::new();
    for (i, a) in layout.aliases().enumerate() {
        let _ = nl.push(a, layout.kind(i).clone());
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::schema::GraphSchema;
    use gs_graph::{Value, ValueType};
    use gs_grin::Direction;
    use gs_ir::logical::ProjectItem;
    use gs_ir::physical::lower_naive;
    use gs_ir::{Pattern, PlanBuilder};

    fn schema() -> GraphSchema {
        let mut s = GraphSchema::new();
        let v = s.add_vertex_label("V", &[("tag", ValueType::Int)]);
        s.add_edge_label("E", v, v, &[("weight", ValueType::Float)]);
        s
    }

    #[test]
    fn push_filters_moves_single_alias_conjuncts() {
        let s = schema();
        let mut p = Pattern::new();
        let a = p.add_vertex("a", gs_graph::LabelId(0));
        let b = p.add_vertex("b", gs_graph::LabelId(0));
        p.add_edge(None, gs_graph::LabelId(0), a, b);
        let builder = PlanBuilder::new(&s).match_pattern(p).unwrap();
        let pred = Expr::bin(
            BinOp::And,
            Expr::bin(
                BinOp::Eq,
                builder.prop("a", "tag").unwrap(),
                Expr::Const(Value::Int(5)),
            ),
            Expr::bin(
                BinOp::Ne,
                builder.col("a").unwrap(),
                builder.col("b").unwrap(),
            ),
        );
        let plan = builder.select(pred).build();
        let optimized = push_filters(&plan).unwrap();
        // the a.tag=5 conjunct moved into the pattern; a<>b remains
        match &optimized.ops[0] {
            LogicalOp::Match { pattern } => {
                assert!(pattern.vertices[0].predicate.is_some());
                assert!(pattern.vertices[1].predicate.is_none());
            }
            other => panic!("{other:?}"),
        }
        match &optimized.ops[1] {
            LogicalOp::Select { predicate } => {
                let mut cols = Vec::new();
                predicate.referenced_columns(&mut cols);
                cols.dedup();
                assert_eq!(cols.len(), 2, "residual references both aliases");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn push_filters_removes_fully_pushed_select() {
        let s = schema();
        let builder = PlanBuilder::new(&s).scan("a", "V").unwrap();
        let pred = Expr::bin(
            BinOp::Eq,
            builder.prop("a", "tag").unwrap(),
            Expr::Const(Value::Int(1)),
        );
        let plan = builder.select(pred).build();
        let optimized = push_filters(&plan).unwrap();
        assert_eq!(optimized.ops.len(), 1);
        match &optimized.ops[0] {
            LogicalOp::ScanVertex { predicate, .. } => assert!(predicate.is_some()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fusion_rewrites_expand_getvertex_pairs() {
        let s = schema();
        let plan = PlanBuilder::new(&s)
            .scan("a", "V")
            .unwrap()
            .expand_edge("a", "E", Direction::Out, "e")
            .unwrap()
            .get_vertex("e", "b")
            .unwrap()
            .project(vec![
                (ProjectItem::Expr(Expr::Column(0)), "a"),
                (ProjectItem::Expr(Expr::Column(2)), "b"),
            ])
            .unwrap()
            .build();
        let phys = lower_naive(&plan).unwrap();
        let fused = fuse_expand_get_vertex(&phys);
        let n_expands = fused
            .ops
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    PhysicalOp::Expand {
                        out: ExpandOut::VertexFused { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(n_expands, 1);
        assert!(fused.ops.len() < phys.ops.len());
        // the downstream project's columns were remapped (b was col 2 → 1)
        match fused.ops.last().unwrap() {
            PhysicalOp::Project { items } => match &items[1].0 {
                ProjectItem::Expr(Expr::Column(c)) => assert_eq!(*c, 1),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fusion_skips_when_edge_is_used() {
        let s = schema();
        let builder = PlanBuilder::new(&s)
            .scan("a", "V")
            .unwrap()
            .expand_edge("a", "E", Direction::Out, "e")
            .unwrap()
            .get_vertex("e", "b")
            .unwrap();
        let wpred = Expr::bin(
            BinOp::Gt,
            builder.prop("e", "weight").unwrap(),
            Expr::Const(Value::Float(1.0)),
        );
        let plan = builder.select(wpred).build();
        let phys = lower_naive(&plan).unwrap();
        let fused = fuse_expand_get_vertex(&phys);
        assert_eq!(fused.ops, phys.ops, "edge is referenced; no fusion");
    }
}
