//! # gs-lang — query language front-ends
//!
//! Both Gremlin and Cypher lower to the same GraphIR logical plan (paper
//! §5.1), so the optimizer and both execution engines are shared. The
//! Figure 5 example — the same "purchased items' prices of friends" query in
//! both languages — compiles to the same logical DAG here (see the
//! `figure5_equivalence` integration test at the workspace root).

pub mod cypher;
pub mod frontend;
pub mod gremlin;
pub mod lexer;

pub use cypher::parse_cypher;
pub use frontend::{statement_key, CompiledQuery, Frontend};
pub use gremlin::parse_gremlin;
