//! Cypher front-end: parses a practical subset of Cypher into GraphIR.
//!
//! Supported grammar (one statement):
//!
//! ```text
//! statement := (MATCH patterns [WHERE expr] | WITH items [WHERE expr])*
//!              RETURN [DISTINCT] items [ORDER BY key [ASC|DESC], ...] [LIMIT n]
//! patterns  := path (',' path)*
//! path      := node (edge node)*
//! node      := '(' [alias] [':' Label] ['{' prop ':' literal, ... '}'] ')'
//! edge      := '-[' [alias] [':' TYPE] [props] ']->' | '<-[..]-' | '-[..]-'
//! items     := expr [AS alias] | COUNT(*|expr) | SUM/AVG/MIN/MAX/COLLECT(expr)
//! ```
//!
//! Multiple `MATCH` clauses extend previously-bound aliases — the paper's §8
//! fraud query (two MATCHes joined through `v` with aggregating `WITH`
//! stages) parses end-to-end. `$param` references resolve against a
//! caller-supplied parameter map, which is how stored procedures inject
//! fraud-seed lists.

use crate::lexer::{tokenize, Cursor, Token};
use gs_graph::schema::GraphSchema;
use gs_graph::{GraphError, Result, Value};
use gs_ir::logical::ProjectItem;
use gs_ir::{AggFunc, BinOp, Expr, LogicalPlan, Pattern, PlanBuilder};
use std::collections::HashMap;

/// Parses a Cypher statement into a logical plan.
pub fn parse_cypher(
    src: &str,
    schema: &GraphSchema,
    params: &HashMap<String, Value>,
) -> Result<LogicalPlan> {
    let mut cur = Cursor::new(tokenize(src)?);
    let mut builder = PlanBuilder::new(schema);
    let mut anon = 0usize;
    let mut saw_return = false;

    while !cur.at_eof() {
        if cur.eat(&Token::Semicolon) {
            continue;
        }
        if cur.eat_kw("MATCH") {
            let pattern = parse_patterns(&mut cur, &builder, &mut anon, params)?;
            builder = builder.match_pattern(pattern)?;
            if cur.eat_kw("WHERE") {
                let pred = parse_expr(&mut cur, &builder, params)?;
                builder = builder.select(pred);
            }
        } else if cur.eat_kw("WITH") {
            let items = parse_items(&mut cur, &builder, params)?;
            builder = builder.project(
                items
                    .iter()
                    .map(|(it, n)| (it.clone(), n.as_str()))
                    .collect(),
            )?;
            if cur.eat_kw("WHERE") {
                let pred = parse_expr(&mut cur, &builder, params)?;
                builder = builder.select(pred);
            }
        } else if cur.eat_kw("RETURN") {
            saw_return = true;
            let distinct = cur.eat_kw("DISTINCT");
            let items = parse_items(&mut cur, &builder, params)?;
            builder = builder.project(
                items
                    .iter()
                    .map(|(it, n)| (it.clone(), n.as_str()))
                    .collect(),
            )?;
            if distinct {
                builder = builder.dedup(&[])?;
            }
            if cur.eat_kw("ORDER") {
                if !cur.eat_kw("BY") {
                    return Err(GraphError::Query("expected BY after ORDER".into()));
                }
                let mut keys = Vec::new();
                loop {
                    let k = parse_expr(&mut cur, &builder, params)?;
                    let asc = if cur.eat_kw("DESC") {
                        false
                    } else {
                        cur.eat_kw("ASC");
                        true
                    };
                    keys.push((k, asc));
                    if !cur.eat(&Token::Comma) {
                        break;
                    }
                }
                let limit = if cur.eat_kw("LIMIT") {
                    Some(parse_usize(&mut cur)?)
                } else {
                    None
                };
                builder = builder.order(keys, limit);
            } else if cur.eat_kw("LIMIT") {
                let n = parse_usize(&mut cur)?;
                builder = builder.limit(n);
            }
        } else {
            return Err(GraphError::Query(format!(
                "unexpected token {:?} (expected MATCH/WITH/RETURN)",
                cur.peek()
            )));
        }
    }
    if !saw_return {
        return Err(GraphError::Query("statement has no RETURN clause".into()));
    }
    let plan = builder.build();
    // Frontend boundary check: a lowered plan with verifier *errors* never
    // leaves the frontend (warnings — plan smells — pass through).
    gs_ir::verify_logical(&plan, schema).check("cypher frontend")?;
    Ok(plan)
}

fn parse_usize(cur: &mut Cursor) -> Result<usize> {
    match cur.next() {
        Token::Int(n) if n >= 0 => Ok(n as usize),
        other => Err(GraphError::Query(format!(
            "expected count, found {other:?}"
        ))),
    }
}

// ---------------- patterns ----------------

struct RawNode {
    alias: String,
    label: Option<String>,
    props: Vec<(String, Value)>,
}

struct RawEdge {
    alias: Option<String>,
    etype: String,
    props: Vec<(String, Value)>,
    /// Left-to-right as written: Some(true) = `->`, Some(false) = `<-`,
    /// None = undirected.
    right: Option<bool>,
}

fn parse_patterns(
    cur: &mut Cursor,
    builder: &PlanBuilder,
    anon: &mut usize,
    params: &HashMap<String, Value>,
) -> Result<Pattern> {
    let mut nodes: Vec<RawNode> = Vec::new();
    let mut links: Vec<(usize, RawEdge, usize)> = Vec::new();

    let node_index = |nodes: &mut Vec<RawNode>, n: RawNode| -> usize {
        if let Some(i) = nodes.iter().position(|x| x.alias == n.alias) {
            // merge label/props info
            if nodes[i].label.is_none() {
                nodes[i].label = n.label;
            }
            nodes[i].props.extend(n.props);
            i
        } else {
            nodes.push(n);
            nodes.len() - 1
        }
    };

    loop {
        // one path
        let first = parse_node(cur, anon, params)?;
        let mut prev = node_index(&mut nodes, first);
        while matches!(cur.peek(), Token::Minus | Token::ArrowLeft) {
            let edge = parse_edge(cur, params)?;
            let node = parse_node(cur, anon, params)?;
            let ni = node_index(&mut nodes, node);
            links.push((prev, edge, ni));
            prev = ni;
        }
        if !cur.eat(&Token::Comma) {
            break;
        }
    }

    build_pattern(nodes, links, builder, params)
}

fn parse_node(
    cur: &mut Cursor,
    anon: &mut usize,
    params: &HashMap<String, Value>,
) -> Result<RawNode> {
    cur.expect(&Token::LParen)?;
    let alias = if let Token::Ident(_) = cur.peek() {
        cur.ident()?
    } else {
        *anon += 1;
        format!("__v{anon}")
    };
    let label = if cur.eat(&Token::Colon) {
        Some(cur.ident()?)
    } else {
        None
    };
    let props = if cur.peek() == &Token::LBrace {
        parse_prop_map(cur, params)?
    } else {
        Vec::new()
    };
    cur.expect(&Token::RParen)?;
    Ok(RawNode {
        alias,
        label,
        props,
    })
}

fn parse_edge(cur: &mut Cursor, params: &HashMap<String, Value>) -> Result<RawEdge> {
    // entry: either `-[` ... `]->` / `]-`  or  `<-[` ... `]-`
    let from_left = if cur.eat(&Token::ArrowLeft) {
        // `<-[`
        true
    } else {
        cur.expect(&Token::Minus)?;
        false
    };
    cur.expect(&Token::LBracket)?;
    let alias = if let Token::Ident(_) = cur.peek() {
        Some(cur.ident()?)
    } else {
        None
    };
    let etype = if cur.eat(&Token::Colon) {
        cur.ident()?
    } else {
        return Err(GraphError::Query(
            "pattern edges must specify a relationship type".into(),
        ));
    };
    let props = if cur.peek() == &Token::LBrace {
        parse_prop_map(cur, params)?
    } else {
        Vec::new()
    };
    cur.expect(&Token::RBracket)?;
    let right = if cur.eat(&Token::ArrowRight) {
        if from_left {
            return Err(GraphError::Query("edge has arrows on both ends".into()));
        }
        Some(true)
    } else {
        cur.expect(&Token::Minus)?;
        if from_left {
            Some(false)
        } else {
            None // undirected
        }
    };
    Ok(RawEdge {
        alias,
        etype,
        props,
        right,
    })
}

fn parse_prop_map(
    cur: &mut Cursor,
    params: &HashMap<String, Value>,
) -> Result<Vec<(String, Value)>> {
    cur.expect(&Token::LBrace)?;
    let mut out = Vec::new();
    loop {
        let key = cur.ident()?;
        cur.expect(&Token::Colon)?;
        let v = parse_literal(cur, params)?;
        out.push((key, v));
        if !cur.eat(&Token::Comma) {
            break;
        }
    }
    cur.expect(&Token::RBrace)?;
    Ok(out)
}

fn parse_literal(cur: &mut Cursor, params: &HashMap<String, Value>) -> Result<Value> {
    match cur.next() {
        Token::Int(i) => Ok(Value::Int(i)),
        Token::Float(f) => Ok(Value::Float(f)),
        Token::Str(s) => Ok(Value::Str(s)),
        Token::Ident(s) if s.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
        Token::Ident(s) if s.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
        Token::Ident(s) if s.eq_ignore_ascii_case("null") => Ok(Value::Null),
        Token::Param(p) => params
            .get(&p)
            .cloned()
            .ok_or_else(|| GraphError::Query(format!("missing parameter ${p}"))),
        Token::Minus => match cur.next() {
            Token::Int(i) => Ok(Value::Int(-i)),
            Token::Float(f) => Ok(Value::Float(-f)),
            other => Err(GraphError::Query(format!("bad negative literal {other:?}"))),
        },
        Token::LBracket => {
            let mut list = Vec::new();
            if !cur.eat(&Token::RBracket) {
                loop {
                    list.push(parse_literal(cur, params)?);
                    if !cur.eat(&Token::Comma) {
                        break;
                    }
                }
                cur.expect(&Token::RBracket)?;
            }
            Ok(Value::List(list))
        }
        other => Err(GraphError::Query(format!(
            "expected literal, found {other:?}"
        ))),
    }
}

/// Resolves labels (with inference through edge endpoint constraints) and
/// assembles the [`Pattern`].
fn build_pattern(
    nodes: Vec<RawNode>,
    links: Vec<(usize, RawEdge, usize)>,
    builder: &PlanBuilder,
    _params: &HashMap<String, Value>,
) -> Result<Pattern> {
    let schema = builder.schema();
    let mut labels: Vec<Option<gs_graph::LabelId>> = nodes
        .iter()
        .map(|n| {
            // explicit label, or an existing binding from a previous MATCH
            if let Some(l) = &n.label {
                builder.resolve_vlabel(l).map(Some)
            } else if let Ok(l) = builder.layout().vertex_label(&n.alias) {
                Ok(Some(l))
            } else {
                Ok(None)
            }
        })
        .collect::<Result<Vec<_>>>()?;

    // infer unknown labels from edge endpoint constraints to fixpoint
    loop {
        let mut changed = false;
        for (li, e, ri) in &links {
            let def = schema
                .edge_label_by_name(&e.etype)
                .ok_or_else(|| GraphError::Query(format!("unknown edge type `{}`", e.etype)))?;
            let (src_i, dst_i) = match e.right {
                Some(true) => (*li, *ri),
                Some(false) => (*ri, *li),
                None => {
                    // undirected: only infer when unambiguous (homogeneous)
                    if def.src == def.dst {
                        (*li, *ri)
                    } else {
                        continue;
                    }
                }
            };
            if labels[src_i].is_none() {
                labels[src_i] = Some(def.src);
                changed = true;
            }
            if labels[dst_i].is_none() {
                labels[dst_i] = Some(def.dst);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut pattern = Pattern::new();
    for (i, n) in nodes.iter().enumerate() {
        let label = labels[i].ok_or_else(|| {
            GraphError::Query(format!(
                "cannot infer label for pattern vertex `{}`",
                n.alias
            ))
        })?;
        let vi = pattern.add_vertex(&n.alias, label);
        for (k, v) in &n.props {
            let pred = if let Some(p) = schema.vertex_property(label, k) {
                Expr::bin(
                    BinOp::Eq,
                    Expr::VertexProp {
                        col: 0,
                        label,
                        prop: p.id,
                    },
                    Expr::Const(v.clone()),
                )
            } else if k == "id" {
                Expr::bin(
                    BinOp::Eq,
                    Expr::VertexId { col: 0, label },
                    Expr::Const(v.clone()),
                )
            } else {
                return Err(GraphError::Query(format!("unknown property `{k}`")));
            };
            pattern.and_vertex_predicate(vi, pred);
        }
    }
    for (li, e, ri) in links {
        let def = schema.edge_label_by_name(&e.etype).unwrap().clone();
        let (src_i, dst_i) = match e.right {
            Some(true) => (li, ri),
            Some(false) => (ri, li),
            // Undirected edges compile as written; datasets store symmetric
            // relations (e.g. SNB KNOWS) in both directions, giving Cypher's
            // both-orientation semantics with Out expansion.
            None => (li, ri),
        };
        let src_vi = pattern.vertex_index(&nodes[src_i].alias).unwrap();
        let dst_vi = pattern.vertex_index(&nodes[dst_i].alias).unwrap();
        let ei = pattern.add_edge(e.alias.as_deref(), def.id, src_vi, dst_vi);
        for (k, v) in &e.props {
            let p = schema
                .edge_property(def.id, k)
                .ok_or_else(|| GraphError::Query(format!("unknown edge property `{k}`")))?;
            let pred = Expr::bin(
                BinOp::Eq,
                Expr::EdgeProp {
                    col: 0,
                    label: def.id,
                    prop: p.id,
                },
                Expr::Const(v.clone()),
            );
            pattern.and_edge_predicate(ei, pred);
        }
    }
    Ok(pattern)
}

// ---------------- items & expressions ----------------

fn parse_items(
    cur: &mut Cursor,
    builder: &PlanBuilder,
    params: &HashMap<String, Value>,
) -> Result<Vec<(ProjectItem, String)>> {
    let mut items = Vec::new();
    loop {
        let (item, default_name) = parse_item(cur, builder, params)?;
        let name = if cur.eat_kw("AS") {
            cur.ident()?
        } else {
            default_name
                .ok_or_else(|| GraphError::Query("complex projection item needs AS alias".into()))?
        };
        items.push((item, name));
        if !cur.eat(&Token::Comma) {
            break;
        }
    }
    Ok(items)
}

fn agg_func(name: &str) -> Option<AggFunc> {
    match name.to_ascii_lowercase().as_str() {
        "count" => Some(AggFunc::Count),
        "sum" => Some(AggFunc::Sum),
        "avg" => Some(AggFunc::Avg),
        "min" => Some(AggFunc::Min),
        "max" => Some(AggFunc::Max),
        "collect" => Some(AggFunc::Collect),
        _ => None,
    }
}

fn parse_item(
    cur: &mut Cursor,
    builder: &PlanBuilder,
    params: &HashMap<String, Value>,
) -> Result<(ProjectItem, Option<String>)> {
    // aggregate?
    if let Token::Ident(name) = cur.peek() {
        if let Some(f) = agg_func(name) {
            if cur.peek2() == &Token::LParen {
                cur.next(); // name
                cur.next(); // (
                let distinct = cur.eat_kw("DISTINCT");
                let f = if distinct && matches!(f, AggFunc::Count) {
                    AggFunc::CountDistinct
                } else {
                    f
                };
                let inner = if cur.eat(&Token::Star) {
                    Expr::Const(Value::Int(1))
                } else {
                    parse_expr(cur, builder, params)?
                };
                cur.expect(&Token::RParen)?;
                return Ok((ProjectItem::Agg(f, inner), None));
            }
        }
    }
    // a bare alias reference keeps its own name; anything else needs AS
    let default = match (cur.peek(), cur.peek2()) {
        (Token::Ident(a), t) if t != &Token::LParen && t != &Token::Dot => Some(a.clone()),
        _ => None,
    };
    let e = parse_expr(cur, builder, params)?;
    Ok((ProjectItem::Expr(e), default))
}

/// Pratt-style expression parser bound against the builder's layout.
pub(crate) fn parse_expr(
    cur: &mut Cursor,
    builder: &PlanBuilder,
    params: &HashMap<String, Value>,
) -> Result<Expr> {
    parse_or(cur, builder, params)
}

fn parse_or(
    cur: &mut Cursor,
    builder: &PlanBuilder,
    params: &HashMap<String, Value>,
) -> Result<Expr> {
    let mut lhs = parse_and(cur, builder, params)?;
    while cur.eat_kw("OR") {
        let rhs = parse_and(cur, builder, params)?;
        lhs = Expr::bin(BinOp::Or, lhs, rhs);
    }
    Ok(lhs)
}

fn parse_and(
    cur: &mut Cursor,
    builder: &PlanBuilder,
    params: &HashMap<String, Value>,
) -> Result<Expr> {
    let mut lhs = parse_not(cur, builder, params)?;
    while cur.eat_kw("AND") {
        let rhs = parse_not(cur, builder, params)?;
        lhs = Expr::bin(BinOp::And, lhs, rhs);
    }
    Ok(lhs)
}

fn parse_not(
    cur: &mut Cursor,
    builder: &PlanBuilder,
    params: &HashMap<String, Value>,
) -> Result<Expr> {
    if cur.eat_kw("NOT") {
        Ok(Expr::Not(Box::new(parse_not(cur, builder, params)?)))
    } else {
        parse_cmp(cur, builder, params)
    }
}

fn parse_cmp(
    cur: &mut Cursor,
    builder: &PlanBuilder,
    params: &HashMap<String, Value>,
) -> Result<Expr> {
    let lhs = parse_add(cur, builder, params)?;
    let op = match cur.peek() {
        Token::Eq => BinOp::Eq,
        Token::Ne => BinOp::Ne,
        Token::Lt => BinOp::Lt,
        Token::Le => BinOp::Le,
        Token::Gt => BinOp::Gt,
        Token::Ge => BinOp::Ge,
        Token::Ident(s) if s.eq_ignore_ascii_case("IN") => {
            cur.next();
            let list = match parse_literal(cur, params)? {
                Value::List(l) => l,
                single => vec![single],
            };
            return Ok(Expr::In {
                expr: Box::new(lhs),
                list,
            });
        }
        _ => return Ok(lhs),
    };
    cur.next();
    let rhs = parse_add(cur, builder, params)?;
    Ok(Expr::bin(op, lhs, rhs))
}

fn parse_add(
    cur: &mut Cursor,
    builder: &PlanBuilder,
    params: &HashMap<String, Value>,
) -> Result<Expr> {
    let mut lhs = parse_mul(cur, builder, params)?;
    loop {
        let op = match cur.peek() {
            Token::Plus => BinOp::Add,
            Token::Minus => BinOp::Sub,
            _ => break,
        };
        cur.next();
        let rhs = parse_mul(cur, builder, params)?;
        lhs = Expr::bin(op, lhs, rhs);
    }
    Ok(lhs)
}

fn parse_mul(
    cur: &mut Cursor,
    builder: &PlanBuilder,
    params: &HashMap<String, Value>,
) -> Result<Expr> {
    let mut lhs = parse_atom(cur, builder, params)?;
    loop {
        let op = match cur.peek() {
            Token::Star => BinOp::Mul,
            Token::Slash => BinOp::Div,
            _ => break,
        };
        cur.next();
        let rhs = parse_atom(cur, builder, params)?;
        lhs = Expr::bin(op, lhs, rhs);
    }
    Ok(lhs)
}

fn parse_atom(
    cur: &mut Cursor,
    builder: &PlanBuilder,
    params: &HashMap<String, Value>,
) -> Result<Expr> {
    match cur.peek().clone() {
        Token::LParen => {
            cur.next();
            let e = parse_expr(cur, builder, params)?;
            cur.expect(&Token::RParen)?;
            Ok(e)
        }
        Token::Ident(name) => {
            // id(v) function form
            if name.eq_ignore_ascii_case("id") && cur.peek2() == &Token::LParen {
                cur.next();
                cur.next();
                let alias = cur.ident()?;
                cur.expect(&Token::RParen)?;
                return builder.prop(&alias, "id");
            }
            if agg_func(&name).is_some() && cur.peek2() == &Token::LParen {
                return Err(GraphError::Query(
                    "aggregates are only allowed as projection items".into(),
                ));
            }
            cur.next();
            if cur.eat(&Token::Dot) {
                let prop = cur.ident()?;
                builder.prop(&name, &prop)
            } else if name.eq_ignore_ascii_case("true") {
                Ok(Expr::Const(Value::Bool(true)))
            } else if name.eq_ignore_ascii_case("false") {
                Ok(Expr::Const(Value::Bool(false)))
            } else if name.eq_ignore_ascii_case("null") {
                Ok(Expr::Const(Value::Null))
            } else {
                builder.col(&name)
            }
        }
        _ => Ok(Expr::Const(parse_literal(cur, params)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::ValueType;

    fn schema() -> GraphSchema {
        let mut s = GraphSchema::new();
        let account = s.add_vertex_label("Account", &[("name", ValueType::Str)]);
        let item = s.add_vertex_label("Item", &[("price", ValueType::Float)]);
        s.add_edge_label("BUY", account, item, &[("date", ValueType::Date)]);
        s.add_edge_label("KNOWS", account, account, &[]);
        s
    }

    fn parse(q: &str) -> Result<LogicalPlan> {
        parse_cypher(q, &schema(), &HashMap::new())
    }

    #[test]
    fn simple_match_return() {
        let plan = parse("MATCH (a:Account) RETURN a").unwrap();
        assert_eq!(plan.output_layout().width(), 1);
        assert_eq!(plan.output_layout().index_of("a"), Some(0));
    }

    #[test]
    fn path_with_inference_and_props() {
        let plan = parse(
            "MATCH (a:Account {name: 'A1'})-[b:BUY]->(i) WHERE i.price > 5.0 RETURN a, i.price AS p",
        )
        .unwrap();
        // anonymous-less: a, b, i bound; i inferred as Item
        let names: Vec<&str> = plan.output_layout().aliases().collect();
        assert_eq!(names, vec!["a", "p"]);
        assert!(matches!(
            plan.ops.last().unwrap(),
            gs_ir::LogicalOp::Project { .. }
        ));
    }

    #[test]
    fn reversed_arrow_and_shared_vertex() {
        // the paper's co-purchase shape
        let plan = parse(
            "MATCH (v:Account)-[b1:BUY]->(i:Item)<-[b2:BUY]-(s:Account) \
             WHERE b1.date - b2.date < 5 RETURN v, COUNT(s) AS cnt",
        )
        .unwrap();
        match &plan.ops[0] {
            gs_ir::LogicalOp::Match { pattern } => {
                assert_eq!(pattern.vertices.len(), 3);
                assert_eq!(pattern.edges.len(), 2);
                // both BUY edges point INTO the item
                let item = pattern.vertex_index("i").unwrap();
                assert!(pattern.edges.iter().all(|e| e.dst == item));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn with_aggregation_pipeline() {
        let plan = parse(
            "MATCH (v:Account)-[:KNOWS]-(f:Account) \
             WITH v, COUNT(f) AS friends WHERE friends > 3 \
             RETURN v, friends ORDER BY friends DESC LIMIT 10",
        )
        .unwrap();
        let kinds: Vec<&str> = plan
            .ops
            .iter()
            .map(|op| match op {
                gs_ir::LogicalOp::Match { .. } => "match",
                gs_ir::LogicalOp::Project { .. } => "project",
                gs_ir::LogicalOp::Select { .. } => "select",
                gs_ir::LogicalOp::Order { .. } => "order",
                _ => "other",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["match", "project", "select", "project", "order"]
        );
    }

    #[test]
    fn params_resolve() {
        let mut params = HashMap::new();
        params.insert(
            "seeds".to_string(),
            Value::List(vec![Value::Int(1), Value::Int(2)]),
        );
        let plan = parse_cypher(
            "MATCH (a:Account) WHERE a.id IN $seeds RETURN a",
            &schema(),
            &params,
        )
        .unwrap();
        assert_eq!(plan.ops.len(), 3);
        // missing param errors
        assert!(parse("MATCH (a:Account) WHERE a.id IN $nope RETURN a").is_err());
    }

    #[test]
    fn count_star_and_distinct() {
        let plan = parse("MATCH (a:Account) RETURN COUNT(*) AS n").unwrap();
        match &plan.ops[1] {
            gs_ir::LogicalOp::Project { items } => {
                assert!(matches!(items[0].0, ProjectItem::Agg(AggFunc::Count, _)));
            }
            _ => panic!(),
        }
        let plan2 = parse("MATCH (a:Account)-[:KNOWS]-(b) RETURN COUNT(DISTINCT b) AS n").unwrap();
        match &plan2.ops[1] {
            gs_ir::LogicalOp::Project { items } => {
                assert!(matches!(
                    items[0].0,
                    ProjectItem::Agg(AggFunc::CountDistinct, _)
                ));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("MATCH (a:Ghost) RETURN a").is_err()); // unknown label
        assert!(parse("MATCH (a:Account) RETURN").is_err()); // missing items
        assert!(parse("MATCH (a:Account)").is_err()); // no RETURN
        assert!(parse("MATCH (a)-[]->(b) RETURN a").is_err()); // untyped edge
        assert!(parse("FOO").is_err());
    }

    #[test]
    fn fraud_query_full_shape_parses() {
        let mut params = HashMap::new();
        params.insert(
            "SEEDS".to_string(),
            Value::List(vec![Value::Int(3), Value::Int(97)]),
        );
        let q = "MATCH (v:Account {id: 1})-[b1:BUY]->(:Item)<-[b2:BUY]-(s:Account) \
                 WHERE s.id IN $SEEDS AND b1.date - b2.date < 5 \
                 WITH v, COUNT(s) AS cnt1 \
                 MATCH (v)-[:KNOWS]-(f:Account), (f)-[b3:BUY]->(:Item)<-[b4:BUY]-(s2:Account) \
                 WHERE s2.id IN $SEEDS \
                 WITH v, cnt1, COUNT(s2) AS cnt2 \
                 WHERE 2 * cnt1 + 1 * cnt2 > 3 \
                 RETURN v";
        let plan = parse_cypher(q, &schema(), &params).unwrap();
        assert!(plan.ops.len() >= 7);
        assert_eq!(plan.output_layout().index_of("v"), Some(0));
    }
}
