/root/repo/target/debug/deps/gs_telemetry-d2f5087239e0bc6d.d: crates/gs-telemetry/src/lib.rs crates/gs-telemetry/src/histogram.rs crates/gs-telemetry/src/registry.rs crates/gs-telemetry/src/span.rs

/root/repo/target/debug/deps/libgs_telemetry-d2f5087239e0bc6d.rlib: crates/gs-telemetry/src/lib.rs crates/gs-telemetry/src/histogram.rs crates/gs-telemetry/src/registry.rs crates/gs-telemetry/src/span.rs

/root/repo/target/debug/deps/libgs_telemetry-d2f5087239e0bc6d.rmeta: crates/gs-telemetry/src/lib.rs crates/gs-telemetry/src/histogram.rs crates/gs-telemetry/src/registry.rs crates/gs-telemetry/src/span.rs

crates/gs-telemetry/src/lib.rs:
crates/gs-telemetry/src/histogram.rs:
crates/gs-telemetry/src/registry.rs:
crates/gs-telemetry/src/span.rs:
