//! # gs-sanitizer — concurrency sanitizer for the simulated cluster
//!
//! The repo's premise is that an in-process cluster simulation (threads +
//! channels standing in for the paper's 8-node Kubernetes deployment)
//! preserves the *code paths* of the real system — which means its
//! concurrency bugs are real too. This crate instruments the simulation's
//! synchronization layer and reports defects with stable diagnostic
//! codes, mirroring `gs-irlint` one layer down:
//!
//! | code | finding |
//! |---|---|
//! | `S001` | lock-order cycle (potential deadlock), both sites attributed |
//! | `S002` | happens-before race on a [`SharedCell`] |
//! | `S003` | send on a disconnected channel |
//! | `S004` | receiver still blocked in `recv()` at report time |
//! | `S005` | last receiver dropped with messages still queued |
//! | `W201` | unbounded queue exceeded its high-watermark |
//!
//! **Instrumentation.** Drop-in wrappers — [`TrackedMutex`],
//! [`TrackedRwLock`], [`TrackedBarrier`], [`channel::unbounded`] /
//! [`channel::bounded`], [`SharedCell`] — record acquire/release/
//! send/recv events (thread id + site label) into a global event log and
//! maintain per-thread vector clocks. Locks feed a lock-order graph with
//! cycle detection; cells get FastTrack-style happens-before race
//! checking; channels get liveness counters.
//!
//! **Cost.** Everything above only exists with the `sanitize` feature.
//! Without it (the default) every wrapper compiles to an inlined
//! pass-through over `parking_lot` / `crossbeam` / `std::sync::Barrier`,
//! and [`take_report`] returns an empty report — the hot paths carry zero
//! sanitizer overhead.
//!
//! ```
//! use gs_sanitizer::{channel, SharedCell, TrackedMutex};
//!
//! let (out, report) = gs_sanitizer::with_sanitizer(42, || {
//!     let m = TrackedMutex::new("demo.lock", 0u64);
//!     *m.lock() += 1;
//!     let (tx, rx) = channel::unbounded("demo.chan");
//!     tx.send(7u64).unwrap();
//!     rx.recv().unwrap()
//! });
//! assert_eq!(out, 7);
//! assert!(report.is_clean(), "{}", report.render());
//! ```

mod cell;
pub mod channel;
mod report;
#[cfg(feature = "sanitize")]
mod state;
mod sync;

pub use cell::SharedCell;
pub use report::{Diagnostic, Event, Report, Severity};
pub use report::{
    S_DATA_RACE, S_LOCK_CYCLE, S_LOST_MESSAGES, S_RECV_STUCK, S_SEND_DISCONNECTED,
    W_QUEUE_WATERMARK,
};
pub use sync::{TrackedBarrier, TrackedMutex, TrackedRwLock};
#[cfg(feature = "sanitize")]
pub use sync::{TrackedMutexGuard, TrackedReadGuard, TrackedWriteGuard};

/// Whether this build carries the instrumentation (`sanitize` feature).
pub const COMPILED: bool = cfg!(feature = "sanitize");

#[cfg(feature = "sanitize")]
mod control {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    pub(crate) static ENABLED: AtomicBool = AtomicBool::new(false);
    pub(crate) static SEED: AtomicU64 = AtomicU64::new(0);

    /// Starts recording. `seed` is stored for workload drivers (the
    /// simulation has no deterministic scheduler; the seed pins the
    /// workload shape so runs are comparable) and reported by [`seed`].
    ///
    /// [`seed`]: crate::seed
    pub fn enable(seed: u64) {
        SEED.store(seed, Ordering::Release);
        ENABLED.store(true, Ordering::Release);
    }

    /// Stops recording; accumulated findings survive until
    /// [`take_report`](crate::take_report).
    pub fn disable() {
        ENABLED.store(false, Ordering::Release);
    }
}

#[cfg(feature = "sanitize")]
pub use control::{disable, enable};

/// Starts recording (no-op in pass-through builds).
#[cfg(not(feature = "sanitize"))]
pub fn enable(_seed: u64) {}

/// Stops recording (no-op in pass-through builds).
#[cfg(not(feature = "sanitize"))]
pub fn disable() {}

/// Whether the sanitizer is compiled in *and* currently recording.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "sanitize")]
    {
        control::ENABLED.load(std::sync::atomic::Ordering::Acquire)
    }
    #[cfg(not(feature = "sanitize"))]
    {
        false
    }
}

/// The seed passed to the last [`enable`] (0 in pass-through builds).
pub fn seed() -> u64 {
    #[cfg(feature = "sanitize")]
    {
        control::SEED.load(std::sync::atomic::Ordering::Acquire)
    }
    #[cfg(not(feature = "sanitize"))]
    {
        0
    }
}

/// Drains all findings into a [`Report`] and resets the per-run analysis
/// state. Empty in pass-through builds.
pub fn take_report() -> Report {
    #[cfg(feature = "sanitize")]
    {
        state::take_report()
    }
    #[cfg(not(feature = "sanitize"))]
    {
        Report::default()
    }
}

/// The event log so far plus the number of events dropped at the cap.
/// Cleared by [`take_report`]. Empty in pass-through builds.
pub fn take_events() -> (Vec<Event>, u64) {
    #[cfg(feature = "sanitize")]
    {
        state::events()
    }
    #[cfg(not(feature = "sanitize"))]
    {
        (Vec::new(), 0)
    }
}

/// Overrides the unbounded-queue high-watermark behind `W201` until the
/// next [`take_report`]. No-op in pass-through builds.
pub fn set_unbounded_watermark(n: u64) {
    #[cfg(feature = "sanitize")]
    state::set_watermark(n);
    #[cfg(not(feature = "sanitize"))]
    let _ = n;
}

/// Receivers currently blocked in `recv()` across all live tracked
/// channels (the `S004` condition); 0 in pass-through builds. Useful for
/// tests that need to wait until a fixture thread is parked.
pub fn blocked_receivers() -> usize {
    #[cfg(feature = "sanitize")]
    {
        state::blocked_receivers()
    }
    #[cfg(not(feature = "sanitize"))]
    {
        0
    }
}

/// Serializes access to the process-global sanitizer state. Tests (and
/// any two concurrent sanitized workloads in one process) must hold this
/// guard around `enable … take_report` so findings do not cross-
/// contaminate.
pub fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    use std::sync::OnceLock;
    static GATE: OnceLock<parking_lot::Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| parking_lot::Mutex::new(())).lock()
}

/// Runs `f` as one exclusive sanitized workload: takes the [`exclusive`]
/// gate, drains stale state, enables with `seed`, runs `f`, disables, and
/// returns `f`'s result plus the run's [`Report`]. In pass-through builds
/// `f` still runs (under the gate) and the report is empty.
pub fn with_sanitizer<T>(seed: u64, f: impl FnOnce() -> T) -> (T, Report) {
    let _gate = exclusive();
    let _ = take_report(); // drop anything a previous workload leaked
    enable(seed);
    // disable even if `f` unwinds, so a panicking test cannot leave the
    // global sanitizer recording for unrelated code
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            disable();
        }
    }
    let disarm = Disarm;
    let out = f();
    drop(disarm);
    (out, take_report())
}
