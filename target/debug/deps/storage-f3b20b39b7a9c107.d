/root/repo/target/debug/deps/storage-f3b20b39b7a9c107.d: crates/gs-bench/benches/storage.rs Cargo.toml

/root/repo/target/debug/deps/libstorage-f3b20b39b7a9c107.rmeta: crates/gs-bench/benches/storage.rs Cargo.toml

crates/gs-bench/benches/storage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
