//! Direction-optimizing traversal core (Beamer-style BFS, Bellman-Ford
//! SSSP) with work stealing across fragments.
//!
//! GRAPE's Pregel BFS pushes the frontier every superstep; on low-diameter
//! graphs the middle supersteps touch nearly every edge while most targets
//! are already visited. This module rebuilds the traversal loop on the
//! layout-agnostic fragment API: each superstep it compares the frontier's
//! edge mass against the remaining graph and switches between
//!
//! * **push** — expand the frontier's out-edges
//!   ([`crate::fragment::Fragment::for_each_out`]), claiming unvisited
//!   targets with a CAS, and
//! * **pull** — scan *unvisited* vertices' in-edges over the CSC transpose
//!   ([`crate::fragment::Fragment::for_each_in_until`]) with early exit at the first
//!   frontier parent — the Gemini baseline's dense-mode design.
//!
//! Workers (one thread per fragment, the simulated cluster's shared-memory
//! model) claim fixed-size chunks of their own fragment first and then
//! steal chunks from straggling fragments, so a skewed partition no longer
//! serialises a superstep on its slowest worker. Claims write the same
//! value regardless of which worker wins (`level + 1`, or a monotone
//! CAS-min for distances), so results are deterministic and bit-identical
//! to the push-only and Pregel baselines.
//!
//! Telemetry: `grape.traversal.push_steps` / `grape.traversal.pull_steps`,
//! `grape.steal.attempts` / `grape.steal.stolen`, and per-superstep
//! straggler skew `grape.superstep.skew` (ns between fastest and slowest
//! worker).

use crate::engine::GrapeEngine;
use gs_graph::VId;
use gs_sanitizer::{TrackedBarrier, TrackedMutex};
use gs_telemetry::counter;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Frontier chunk size for the work-stealing claim loops.
const CHUNK: usize = 1024;

/// Push↔pull switch threshold: pull when the frontier's edge mass exceeds
/// `m / ALPHA` (the Gemini baseline's dense-mode heuristic).
const ALPHA: u64 = 20;

/// Traversal direction policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraversalPolicy {
    /// Switch push↔pull per superstep by frontier density (the default).
    Auto,
    /// Always push (the classic frontier-expansion baseline).
    PushOnly,
    /// Always pull (for differential testing of the pull path).
    PullOnly,
}

/// What a direction-optimizing run did, for tests and bench reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraversalReport {
    /// Supersteps executed in push mode.
    pub push_steps: u64,
    /// Supersteps executed in pull mode.
    pub pull_steps: u64,
    /// Chunks stolen from other fragments' queues.
    pub chunks_stolen: u64,
}

/// Per-fragment chunk cursors: workers drain their own fragment's range,
/// then steal chunks from the fragment with work remaining. Limits are
/// reset by the coordinator between supersteps.
struct ChunkPool {
    cursors: Vec<AtomicUsize>,
    limits: Vec<AtomicUsize>,
}

impl ChunkPool {
    fn new(k: usize) -> ChunkPool {
        ChunkPool {
            cursors: (0..k).map(|_| AtomicUsize::new(0)).collect(),
            limits: (0..k).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Resets cursor + limit for fragment `i` (coordinator only, between
    /// barriers).
    fn reset(&self, i: usize, limit: usize) {
        self.cursors[i].store(0, Ordering::Relaxed);
        self.limits[i].store(limit, Ordering::Relaxed);
    }

    /// Claims the next chunk: own fragment first, then round-robin steal.
    /// Returns `(fragment index, start, end)`; tallies steal telemetry
    /// into `attempts`/`stolen`.
    fn next(
        &self,
        me: usize,
        attempts: &mut u64,
        stolen: &mut u64,
    ) -> Option<(usize, usize, usize)> {
        let k = self.cursors.len();
        for probe in 0..k {
            let i = (me + probe) % k;
            let limit = self.limits[i].load(Ordering::Relaxed);
            if probe > 0 {
                *attempts += 1;
            }
            loop {
                let cur = self.cursors[i].load(Ordering::Relaxed);
                if cur >= limit {
                    break;
                }
                let end = (cur + CHUNK).min(limit);
                if self.cursors[i]
                    .compare_exchange(cur, end, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    if probe > 0 {
                        *stolen += 1;
                    }
                    return Some((i, cur, end));
                }
            }
        }
        None
    }
}

/// Mode word shared between workers (decided once per superstep by the
/// coordinator so every worker takes the same branch).
const MODE_PUSH: u64 = 0;
const MODE_PULL: u64 = 1;

fn decide_mode(policy: TraversalPolicy, frontier_edges: u64, frontier_size: u64, m: u64) -> u64 {
    match policy {
        TraversalPolicy::PushOnly => MODE_PUSH,
        TraversalPolicy::PullOnly => MODE_PULL,
        TraversalPolicy::Auto => {
            if (frontier_edges + frontier_size).saturating_mul(ALPHA) > m {
                MODE_PULL
            } else {
                MODE_PUSH
            }
        }
    }
}

/// Direction-optimizing BFS: depths from `src` (u64::MAX when
/// unreachable), indexed by global id. Bit-identical to the Pregel
/// [`fn@crate::algorithms::bfs`] on every graph and layout.
pub fn bfs_direction_optimizing(engine: &GrapeEngine, src: VId) -> Vec<u64> {
    bfs_with_policy(engine, src, TraversalPolicy::Auto).0
}

/// BFS under an explicit direction policy, returning the mode/steal
/// report alongside the depths.
pub fn bfs_with_policy(
    engine: &GrapeEngine,
    src: VId,
    policy: TraversalPolicy,
) -> (Vec<u64>, TraversalReport) {
    let n = engine.global_n();
    if n == 0 {
        return (Vec::new(), TraversalReport::default());
    }
    let k = engine.fragments.len();
    let m: u64 = engine.fragments.iter().map(|f| f.edge_count() as u64).sum();
    let depth: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    depth[src.index()].store(0, Ordering::Relaxed);

    // per-fragment frontier of inner local ids at the current level
    let frontiers: Vec<TrackedMutex<Vec<u32>>> = engine
        .fragments
        .iter()
        .map(|f| {
            let mut fl = Vec::new();
            if let Some(l) = f.local(src) {
                if f.is_inner(l) {
                    fl.push(l);
                }
            }
            TrackedMutex::new("grape.traversal.frontier", fl)
        })
        .collect();
    let init_edges: u64 = engine
        .fragments
        .iter()
        .filter_map(|f| {
            f.local(src)
                .filter(|&l| f.is_inner(l))
                .map(|l| f.out_degree(l) as u64)
        })
        .sum();

    let pool = ChunkPool::new(k);
    let mode = AtomicU64::new(decide_mode(policy, init_edges, 1, m));
    let done = AtomicBool::new(false);
    let next_size = AtomicU64::new(0);
    let next_edges = AtomicU64::new(0);
    let times: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
    let push_steps = AtomicU64::new(0);
    let pull_steps = AtomicU64::new(0);
    let total_stolen = AtomicU64::new(0);
    let barrier = TrackedBarrier::new("grape.traversal.superstep", k);
    // seed the chunk pool for level 0
    for (i, f) in engine.fragments.iter().enumerate() {
        let limit = if mode.load(Ordering::Relaxed) == MODE_PUSH {
            frontiers[i].lock().len()
        } else {
            f.local_count()
        };
        pool.reset(i, limit);
    }

    crossbeam::thread::scope(|scope| {
        for me in 0..k {
            let fragments = &engine.fragments;
            let depth = &depth;
            let frontiers = &frontiers;
            let pool = &pool;
            let mode = &mode;
            let done = &done;
            let next_size = &next_size;
            let next_edges = &next_edges;
            let times = &times;
            let push_steps = &push_steps;
            let pull_steps = &pull_steps;
            let total_stolen = &total_stolen;
            let barrier = &barrier;
            scope.spawn(move |_| {
                let my_frag = &fragments[me];
                let mut level: u64 = 0;
                let mut attempts = 0u64;
                let mut stolen = 0u64;
                loop {
                    let t0 = Instant::now();
                    let cur_mode = mode.load(Ordering::Relaxed);
                    if cur_mode == MODE_PUSH {
                        while let Some((fi, lo, hi)) = pool.next(me, &mut attempts, &mut stolen) {
                            let f = &fragments[fi];
                            let chunk: Vec<u32> = {
                                let fl = frontiers[fi].lock();
                                fl[lo..hi].to_vec()
                            };
                            for &l in &chunk {
                                f.for_each_out(l, |nbr, _| {
                                    let g = f.global(nbr.0 as u32);
                                    let _ = depth[g.index()].compare_exchange(
                                        u64::MAX,
                                        level + 1,
                                        Ordering::Relaxed,
                                        Ordering::Relaxed,
                                    );
                                });
                            }
                        }
                    } else {
                        // pull: every fragment scans the in-lists of ALL its
                        // local vertices (mirrors included) — the union over
                        // fragments covers every edge of the cut
                        while let Some((fi, lo, hi)) = pool.next(me, &mut attempts, &mut stolen) {
                            let f = &fragments[fi];
                            for l in lo as u32..hi as u32 {
                                let g = f.global(l);
                                if depth[g.index()].load(Ordering::Relaxed) != u64::MAX {
                                    continue;
                                }
                                let mut found = false;
                                f.for_each_in_until(l, |u| {
                                    if depth[f.global(u.0 as u32).index()].load(Ordering::Relaxed)
                                        == level
                                    {
                                        found = true;
                                        false
                                    } else {
                                        true
                                    }
                                });
                                if found {
                                    let _ = depth[g.index()].compare_exchange(
                                        u64::MAX,
                                        level + 1,
                                        Ordering::Relaxed,
                                        Ordering::Relaxed,
                                    );
                                }
                            }
                        }
                    }
                    times[me].store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    barrier.wait();

                    // rebuild own frontier for level+1 and its edge mass
                    let mut fl = Vec::new();
                    let mut fe = 0u64;
                    for l in 0..my_frag.inner_count as u32 {
                        if depth[my_frag.global(l).index()].load(Ordering::Relaxed) == level + 1 {
                            fl.push(l);
                            fe += my_frag.out_degree(l) as u64;
                        }
                    }
                    next_size.fetch_add(fl.len() as u64, Ordering::Relaxed);
                    next_edges.fetch_add(fe, Ordering::Relaxed);
                    *frontiers[me].lock() = fl;
                    barrier.wait();

                    // coordinator: record telemetry, decide the next mode,
                    // reseed the chunk pool
                    if me == 0 {
                        let (mut min_t, mut max_t) = (u64::MAX, 0u64);
                        for t in times {
                            let v = t.load(Ordering::Relaxed);
                            min_t = min_t.min(v);
                            max_t = max_t.max(v);
                        }
                        counter!("grape.superstep.skew"; max_t.saturating_sub(min_t));
                        if cur_mode == MODE_PUSH {
                            push_steps.fetch_add(1, Ordering::Relaxed);
                            counter!("grape.traversal.push_steps");
                        } else {
                            pull_steps.fetch_add(1, Ordering::Relaxed);
                            counter!("grape.traversal.pull_steps");
                        }
                        let fs = next_size.swap(0, Ordering::Relaxed);
                        let fe = next_edges.swap(0, Ordering::Relaxed);
                        if fs == 0 {
                            done.store(true, Ordering::Relaxed);
                        } else {
                            let next_mode = decide_mode(policy, fe, fs, m);
                            mode.store(next_mode, Ordering::Relaxed);
                            for (i, f) in fragments.iter().enumerate() {
                                let limit = if next_mode == MODE_PUSH {
                                    frontiers[i].lock().len()
                                } else {
                                    f.local_count()
                                };
                                pool.reset(i, limit);
                            }
                        }
                    }
                    barrier.wait();
                    if done.load(Ordering::Relaxed) {
                        break;
                    }
                    level += 1;
                }
                counter!("grape.steal.attempts"; attempts);
                counter!("grape.steal.stolen"; stolen);
                total_stolen.fetch_add(stolen, Ordering::Relaxed);
            });
        }
    })
    .expect("traversal scope");

    let depths = depth
        .into_iter()
        .map(|d| d.into_inner())
        .collect::<Vec<u64>>();
    let report = TraversalReport {
        push_steps: push_steps.into_inner(),
        pull_steps: pull_steps.into_inner(),
        chunks_stolen: total_stolen.into_inner(),
    };
    (depths, report)
}

/// CAS-min on an f64 stored as bits (non-negative floats order by bit
/// pattern, and we only ever shrink). Returns whether we improved it.
#[inline]
fn atomic_min_f64(cell: &AtomicU64, val: f64) -> bool {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        if f64::from_bits(cur) <= val {
            return false;
        }
        match cell.compare_exchange_weak(cur, val.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(c) => cur = c,
        }
    }
}

/// Direction-optimizing SSSP: distances from `src` (f64::INFINITY when
/// unreachable), indexed by global id. Bellman-Ford rounds; each round
/// relaxes the vertices whose distance improved last round, pushing along
/// out-edges or pulling over in-edges by the same density heuristic as
/// BFS. Bit-identical to the Pregel [`fn@crate::algorithms::sssp`].
pub fn sssp_direction_optimizing(engine: &GrapeEngine, src: VId) -> Vec<f64> {
    sssp_with_policy(engine, src, TraversalPolicy::Auto).0
}

/// SSSP under an explicit direction policy, with the traversal report.
pub fn sssp_with_policy(
    engine: &GrapeEngine,
    src: VId,
    policy: TraversalPolicy,
) -> (Vec<f64>, TraversalReport) {
    let n = engine.global_n();
    if n == 0 {
        return (Vec::new(), TraversalReport::default());
    }
    let k = engine.fragments.len();
    let m: u64 = engine.fragments.iter().map(|f| f.edge_count() as u64).sum();
    let dist: Vec<AtomicU64> = (0..n)
        .map(|_| AtomicU64::new(f64::INFINITY.to_bits()))
        .collect();
    dist[src.index()].store(0f64.to_bits(), Ordering::Relaxed);
    // round stamp of the last improvement, u64::MAX = never
    let stamp: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    stamp[src.index()].store(0, Ordering::Relaxed);

    let actives: Vec<TrackedMutex<Vec<u32>>> = engine
        .fragments
        .iter()
        .map(|f| {
            let mut a = Vec::new();
            if let Some(l) = f.local(src) {
                if f.is_inner(l) {
                    a.push(l);
                }
            }
            TrackedMutex::new("grape.traversal.active", a)
        })
        .collect();

    let pool = ChunkPool::new(k);
    let mode = AtomicU64::new(MODE_PUSH);
    let done = AtomicBool::new(false);
    let next_size = AtomicU64::new(0);
    let next_edges = AtomicU64::new(0);
    let times: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
    let push_steps = AtomicU64::new(0);
    let pull_steps = AtomicU64::new(0);
    let total_stolen = AtomicU64::new(0);
    let barrier = TrackedBarrier::new("grape.traversal.superstep", k);
    for (i, _) in engine.fragments.iter().enumerate() {
        let limit = actives[i].lock().len();
        pool.reset(i, limit);
    }
    if policy == TraversalPolicy::PullOnly {
        mode.store(MODE_PULL, Ordering::Relaxed);
        for (i, f) in engine.fragments.iter().enumerate() {
            pool.reset(i, f.local_count());
        }
    }

    crossbeam::thread::scope(|scope| {
        for me in 0..k {
            let fragments = &engine.fragments;
            let dist = &dist;
            let stamp = &stamp;
            let actives = &actives;
            let pool = &pool;
            let mode = &mode;
            let done = &done;
            let next_size = &next_size;
            let next_edges = &next_edges;
            let times = &times;
            let push_steps = &push_steps;
            let pull_steps = &pull_steps;
            let total_stolen = &total_stolen;
            let barrier = &barrier;
            scope.spawn(move |_| {
                let my_frag = &fragments[me];
                let mut round: u64 = 0;
                let mut attempts = 0u64;
                let mut stolen = 0u64;
                loop {
                    let t0 = Instant::now();
                    let cur_mode = mode.load(Ordering::Relaxed);
                    if cur_mode == MODE_PUSH {
                        while let Some((fi, lo, hi)) = pool.next(me, &mut attempts, &mut stolen) {
                            let f = &fragments[fi];
                            let ws = f.weights.as_ref().expect("sssp needs weighted fragments");
                            let chunk: Vec<u32> = {
                                let al = actives[fi].lock();
                                al[lo..hi].to_vec()
                            };
                            for &l in &chunk {
                                let d = f64::from_bits(
                                    dist[f.global(l).index()].load(Ordering::Relaxed),
                                );
                                f.for_each_out(l, |nbr, eid| {
                                    let g = f.global(nbr.0 as u32);
                                    let cand = d + ws[eid.index()];
                                    if atomic_min_f64(&dist[g.index()], cand) {
                                        stamp[g.index()].store(round + 1, Ordering::Relaxed);
                                    }
                                });
                            }
                        }
                    } else {
                        while let Some((fi, lo, hi)) = pool.next(me, &mut attempts, &mut stolen) {
                            let f = &fragments[fi];
                            let ws = f.weights.as_ref().expect("sssp needs weighted fragments");
                            for l in lo as u32..hi as u32 {
                                let g = f.global(l);
                                let mut improved = false;
                                f.for_each_in(l, |u, eid| {
                                    let gu = f.global(u.0 as u32);
                                    if stamp[gu.index()].load(Ordering::Relaxed) == round {
                                        let du = f64::from_bits(
                                            dist[gu.index()].load(Ordering::Relaxed),
                                        );
                                        if atomic_min_f64(&dist[g.index()], du + ws[eid.index()]) {
                                            improved = true;
                                        }
                                    }
                                });
                                if improved {
                                    stamp[g.index()].store(round + 1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    times[me].store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    barrier.wait();

                    // vertices whose distance improved this round become
                    // next round's active set (owners only)
                    let mut al = Vec::new();
                    let mut ae = 0u64;
                    for l in 0..my_frag.inner_count as u32 {
                        if stamp[my_frag.global(l).index()].load(Ordering::Relaxed) == round + 1 {
                            al.push(l);
                            ae += my_frag.out_degree(l) as u64;
                        }
                    }
                    next_size.fetch_add(al.len() as u64, Ordering::Relaxed);
                    next_edges.fetch_add(ae, Ordering::Relaxed);
                    *actives[me].lock() = al;
                    barrier.wait();

                    if me == 0 {
                        let (mut min_t, mut max_t) = (u64::MAX, 0u64);
                        for t in times {
                            let v = t.load(Ordering::Relaxed);
                            min_t = min_t.min(v);
                            max_t = max_t.max(v);
                        }
                        counter!("grape.superstep.skew"; max_t.saturating_sub(min_t));
                        if cur_mode == MODE_PUSH {
                            push_steps.fetch_add(1, Ordering::Relaxed);
                            counter!("grape.traversal.push_steps");
                        } else {
                            pull_steps.fetch_add(1, Ordering::Relaxed);
                            counter!("grape.traversal.pull_steps");
                        }
                        let fs = next_size.swap(0, Ordering::Relaxed);
                        let fe = next_edges.swap(0, Ordering::Relaxed);
                        if fs == 0 {
                            done.store(true, Ordering::Relaxed);
                        } else {
                            let next_mode = decide_mode(policy, fe, fs, m);
                            mode.store(next_mode, Ordering::Relaxed);
                            for (i, f) in fragments.iter().enumerate() {
                                let limit = if next_mode == MODE_PUSH {
                                    actives[i].lock().len()
                                } else {
                                    f.local_count()
                                };
                                pool.reset(i, limit);
                            }
                        }
                    }
                    barrier.wait();
                    if done.load(Ordering::Relaxed) {
                        break;
                    }
                    round += 1;
                }
                counter!("grape.steal.attempts"; attempts);
                counter!("grape.steal.stolen"; stolen);
                total_stolen.fetch_add(stolen, Ordering::Relaxed);
            });
        }
    })
    .expect("traversal scope");

    let dists = dist
        .into_iter()
        .map(|d| f64::from_bits(d.into_inner()))
        .collect::<Vec<f64>>();
    let report = TraversalReport {
        push_steps: push_steps.into_inner(),
        pull_steps: pull_steps.into_inner(),
        chunks_stolen: total_stolen.into_inner(),
    };
    (dists, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{bfs, reference, sssp};
    use gs_graph::LayoutKind;
    use rand::Rng;

    fn random_graph(n: u64, m: usize, seed: u64) -> Vec<(VId, VId)> {
        let mut rng = rand_pcg::Pcg64Mcg::new(seed as u128);
        (0..m)
            .map(|_| (VId(rng.gen_range(0..n)), VId(rng.gen_range(0..n))))
            .collect()
    }

    #[test]
    fn do_bfs_matches_pregel_bfs_all_policies() {
        let edges = random_graph(200, 1600, 11);
        for k in [1, 2, 4] {
            let engine = GrapeEngine::from_edges(200, &edges, k);
            let want = bfs(&engine, VId(0));
            for policy in [
                TraversalPolicy::Auto,
                TraversalPolicy::PushOnly,
                TraversalPolicy::PullOnly,
            ] {
                let (got, _) = bfs_with_policy(&engine, VId(0), policy);
                assert_eq!(got, want, "k={k} policy={policy:?}");
            }
        }
    }

    #[test]
    fn do_bfs_handles_unreachable_and_chain() {
        // long chain keeps the frontier sparse (push); plus an island
        let mut edges: Vec<(VId, VId)> = (0..30).map(|i| (VId(i), VId(i + 1))).collect();
        edges.push((VId(33), VId(34)));
        let engine = GrapeEngine::from_edges(40, &edges, 3);
        let (got, report) = bfs_with_policy(&engine, VId(0), TraversalPolicy::Auto);
        let want = reference::bfs(40, &edges, VId(0));
        assert_eq!(got, want);
        assert!(report.push_steps > 0);
    }

    #[test]
    fn do_bfs_engages_pull_on_dense_graphs() {
        let edges = random_graph(300, 9000, 5);
        let engine = GrapeEngine::from_edges(300, &edges, 4);
        let (got, report) = bfs_with_policy(&engine, VId(0), TraversalPolicy::Auto);
        assert_eq!(got, bfs(&engine, VId(0)));
        assert!(
            report.pull_steps > 0,
            "dense graph should trigger pull: {report:?}"
        );
    }

    #[test]
    fn do_bfs_identical_across_layouts() {
        let edges = random_graph(150, 1200, 21);
        let base = {
            let engine = GrapeEngine::from_edges(150, &edges, 3);
            bfs_direction_optimizing(&engine, VId(3))
        };
        for layout in [LayoutKind::SortedCsr, LayoutKind::CompressedCsr] {
            let engine = GrapeEngine::from_edges_with_layout(150, &edges, 3, layout);
            assert_eq!(
                bfs_direction_optimizing(&engine, VId(3)),
                base,
                "layout {layout}"
            );
        }
    }

    #[test]
    fn do_sssp_matches_pregel_and_reference() {
        let edges = random_graph(120, 900, 31);
        let mut rng = rand_pcg::Pcg64Mcg::new(99);
        let weights: Vec<f64> = (0..edges.len()).map(|_| rng.gen_range(0.1..4.0)).collect();
        let want = reference::sssp(120, &edges, &weights, VId(0));
        for k in [1, 3] {
            let engine = GrapeEngine::from_weighted_edges(120, &edges, &weights, k);
            let pregel = sssp(&engine, VId(0));
            for policy in [
                TraversalPolicy::Auto,
                TraversalPolicy::PushOnly,
                TraversalPolicy::PullOnly,
            ] {
                let (got, _) = sssp_with_policy(&engine, VId(0), policy);
                assert_eq!(got, pregel, "k={k} policy={policy:?} vs pregel");
                for (g, w) in got.iter().zip(&want) {
                    assert!(
                        (g - w).abs() < 1e-9 || (g.is_infinite() && w.is_infinite()),
                        "{g} vs {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn sssp_identical_across_layouts() {
        let edges = random_graph(100, 700, 41);
        let mut rng = rand_pcg::Pcg64Mcg::new(7);
        let weights: Vec<f64> = (0..edges.len()).map(|_| rng.gen_range(0.5..2.0)).collect();
        let base = {
            let engine = GrapeEngine::from_weighted_edges(100, &edges, &weights, 2);
            sssp_direction_optimizing(&engine, VId(0))
        };
        for layout in [LayoutKind::SortedCsr, LayoutKind::CompressedCsr] {
            let engine =
                GrapeEngine::from_weighted_edges_with_layout(100, &edges, &weights, 2, layout);
            let got = sssp_direction_optimizing(&engine, VId(0));
            assert!(
                got.iter()
                    .zip(&base)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "layout {layout} differs"
            );
        }
    }

    #[test]
    fn empty_graph_is_fine() {
        let engine = GrapeEngine::from_edges(0, &[], 1);
        assert!(bfs_direction_optimizing(&engine, VId(0)).is_empty());
    }
}
