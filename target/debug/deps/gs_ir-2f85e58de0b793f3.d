/root/repo/target/debug/deps/gs_ir-2f85e58de0b793f3.d: crates/gs-ir/src/lib.rs crates/gs-ir/src/builder.rs crates/gs-ir/src/engine.rs crates/gs-ir/src/exec.rs crates/gs-ir/src/expr.rs crates/gs-ir/src/logical.rs crates/gs-ir/src/pattern.rs crates/gs-ir/src/physical.rs crates/gs-ir/src/record.rs

/root/repo/target/debug/deps/gs_ir-2f85e58de0b793f3: crates/gs-ir/src/lib.rs crates/gs-ir/src/builder.rs crates/gs-ir/src/engine.rs crates/gs-ir/src/exec.rs crates/gs-ir/src/expr.rs crates/gs-ir/src/logical.rs crates/gs-ir/src/pattern.rs crates/gs-ir/src/physical.rs crates/gs-ir/src/record.rs

crates/gs-ir/src/lib.rs:
crates/gs-ir/src/builder.rs:
crates/gs-ir/src/engine.rs:
crates/gs-ir/src/exec.rs:
crates/gs-ir/src/expr.rs:
crates/gs-ir/src/logical.rs:
crates/gs-ir/src/pattern.rs:
crates/gs-ir/src/physical.rs:
crates/gs-ir/src/record.rs:
