/root/repo/target/release/deps/criterion-9b19311b9c97bce7.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-9b19311b9c97bce7.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-9b19311b9c97bce7.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
