//! Distributed single-source shortest paths (Bellman-Ford-style relaxation
//! in the Pregel model) over weighted fragments.

use crate::engine::GrapeEngine;
use crate::messages::OutBuffers;
use gs_graph::VId;

/// SSSP distances from `src` (`f64::INFINITY` when unreachable). The engine
/// must have been built with [`GrapeEngine::from_weighted_edges`].
pub fn sssp(engine: &GrapeEngine, src: VId) -> Vec<f64> {
    engine.run(|frag, comm| {
        let weights = frag
            .weights
            .as_ref()
            .expect("sssp requires weighted fragments");
        let inner = frag.inner_count;
        let mut dist = vec![f64::INFINITY; inner];
        let mut out = OutBuffers::new(comm.workers);

        // round 0: seed the source
        if let Some(l) = frag.local(src) {
            if frag.is_inner(l) {
                dist[l as usize] = 0.0;
                relax_from(frag, weights, l, 0.0, &mut out);
            }
        }
        loop {
            let sent = out.total();
            let (blocks, _) = comm.exchange(&mut out);
            if comm.allreduce(sent) == 0 {
                break;
            }
            // collect the best incoming distance per local vertex
            let mut improved: Vec<(u32, f64)> = Vec::new();
            for b in &blocks {
                b.for_each::<f64>(|g, d| {
                    let l = frag.local(g).expect("routed to owner");
                    if d < dist[l as usize] {
                        dist[l as usize] = d;
                        improved.push((l, d));
                    }
                });
            }
            for (l, d) in improved {
                // only relax if still the best (may have been superseded)
                if (dist[l as usize] - d).abs() < f64::EPSILON {
                    relax_from(frag, weights, l, d, &mut out);
                }
            }
        }
        (0..inner as u32)
            .map(|l| (frag.global(l), dist[l as usize]))
            .collect()
    })
}

fn relax_from(
    frag: &crate::fragment::Fragment,
    weights: &[f64],
    l: u32,
    d: f64,
    out: &mut OutBuffers,
) {
    frag.for_each_out(l, |nbr, eid| {
        let g = frag.global(nbr.0 as u32);
        out.send(frag.owner(g).index(), g, d + weights[eid.index()]);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::reference;

    #[test]
    fn matches_dijkstra_on_small_graph() {
        let edges = vec![
            (VId(0), VId(1)),
            (VId(0), VId(2)),
            (VId(1), VId(3)),
            (VId(2), VId(3)),
            (VId(3), VId(4)),
        ];
        let weights = vec![1.0, 4.0, 2.0, 0.5, 1.0];
        for k in [1, 2, 3] {
            let engine = GrapeEngine::from_weighted_edges(6, &edges, &weights, k);
            let got = sssp(&engine, VId(0));
            let want = reference::sssp(6, &edges, &weights, VId(0));
            for (a, b) in got.iter().zip(&want) {
                assert!(
                    (a - b).abs() < 1e-12 || (a.is_infinite() && b.is_infinite()),
                    "k={k} {got:?} vs {want:?}"
                );
            }
        }
    }

    #[test]
    fn random_weighted_graph_matches_dijkstra() {
        use rand::Rng;
        let mut rng = rand_pcg::Pcg64Mcg::new(5);
        let n = 150u64;
        let edges: Vec<(VId, VId)> = (0..700)
            .map(|_| (VId(rng.gen_range(0..n)), VId(rng.gen_range(0..n))))
            .collect();
        let weights: Vec<f64> = (0..700).map(|_| rng.gen_range(0.1..10.0)).collect();
        let engine = GrapeEngine::from_weighted_edges(n as usize, &edges, &weights, 4);
        let got = sssp(&engine, VId(3));
        let want = reference::sssp(n as usize, &edges, &weights, VId(3));
        for (a, b) in got.iter().zip(&want) {
            assert!(
                (a - b).abs() < 1e-9 || (a.is_infinite() && b.is_infinite()),
                "{a} vs {b}"
            );
        }
    }
}
