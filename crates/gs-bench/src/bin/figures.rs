//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures all [scale]              run every experiment
//! figures <id> [scale]             run one (table1, fig7a..fig7m, table2, exp6..exp8)
//! figures list                     list experiment ids
//! figures <id> [scale] --telemetry print a telemetry report after each experiment
//! ```
//!
//! `scale` multiplies dataset sizes (default 1.0 ≈ laptop-friendly).

use gs_bench::experiments;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry = {
        let before = args.len();
        args.retain(|a| a != "--telemetry");
        args.len() != before
    };
    if telemetry {
        // one registry for the whole run: hot paths cache static metric
        // handles into it, so reset between experiments instead of
        // reinstalling
        gs_telemetry::install(gs_telemetry::Registry::new());
    }
    let report = || {
        if telemetry {
            let g = gs_telemetry::global();
            print!("{}", g.text_report());
            g.reset();
        }
    };
    let which = args.first().map(String::as_str).unwrap_or("all");
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);

    match which {
        "list" => {
            for (name, _) in experiments::EXPERIMENTS {
                println!("{name}");
            }
        }
        "all" => {
            for (name, f) in experiments::EXPERIMENTS {
                println!("\n################ {name} ################");
                f(scale);
                report();
            }
        }
        name => {
            if experiments::run(name, scale).is_none() {
                eprintln!("unknown experiment `{name}`; try `figures list`");
                std::process::exit(1);
            }
            report();
        }
    }
}
