//! `gs-bench costcheck` — estimator quality and soundness for the
//! `gs_ir::cost` static analysis (BENCH_cost.json).
//!
//! Runs the full irlint corpus (20 SNB BI plans, the §8 fraud/cyber
//! application queries, the quickstart pair) through the cost analysis
//! *and* the reference engine: every plan is costed with a catalog built
//! over its own dataset, executed with [`gs_ir::exec::execute_traced`]
//! recording actual per-operator cardinalities, and diffed:
//!
//! * **q-error** `max(est/actual, actual/est)` per operator, with
//!   p50/p90/p99/max percentiles written to `BENCH_cost.json` — estimator
//!   quality is a tracked number, not a vibe;
//! * **soundness** — every actual must fall inside the predicted
//!   `[lo, hi]` interval (a violation is a bug in the analysis, not a bad
//!   estimate, and fails the run);
//! * **pathological plans** — hand-built cross-product / expansion-blowup
//!   / memory-hog plans must fire `C001`/`C002`/`C003` respectively,
//!   while the clean corpus must fire none.

use crate::util::TablePrinter;
use gs_graph::json::Json;
use gs_graph::schema::GraphSchema;
use gs_graph::{PropertyGraphData, Value};
use gs_ir::cost::{
    cost_physical, CostBudget, CostReport, C_CROSS_PRODUCT, C_EXPANSION_BLOWUP, C_MEMORY_BUDGET,
};
use gs_ir::exec::execute_traced;
use gs_ir::expr::{BinOp, Expr};
use gs_ir::physical::{ExpandOut, PhysicalOp, PhysicalPlan};
use gs_ir::verify::Severity;
use gs_ir::{LogicalPlan, Record};
use gs_optimizer::{GlogueCatalog, Optimizer};
use gs_vineyard::VineyardGraph;
use std::collections::HashMap;

/// Per-operator estimate/actual pair for one query.
#[derive(Clone, Debug)]
pub struct OpRow {
    pub op: &'static str,
    pub est: f64,
    pub lo: f64,
    pub hi: f64,
    pub actual: u64,
    /// `max(est/actual, actual/est)`; `None` when either side is zero.
    pub q_error: Option<f64>,
    /// Whether `actual` fell inside `[lo, hi]`.
    pub sound: bool,
}

/// One costed + executed corpus query.
pub struct QueryCost {
    pub query: String,
    pub ops: Vec<OpRow>,
    /// C-errors the analysis raised on this (clean-corpus) plan.
    pub errors: usize,
    /// Ops whose actual cardinality escaped the predicted interval.
    pub violations: usize,
}

/// One pathological plan and whether its expected C-code fired.
pub struct PathologicalCheck {
    pub name: &'static str,
    pub expected: &'static str,
    pub fired: bool,
}

/// The whole costcheck outcome.
pub struct CostcheckReport {
    pub queries: Vec<QueryCost>,
    pub pathological: Vec<PathologicalCheck>,
    pub q_p50: f64,
    pub q_p90: f64,
    pub q_p99: f64,
    pub q_max: f64,
    pub q_samples: usize,
}

impl CostcheckReport {
    pub fn clean_errors(&self) -> usize {
        self.queries.iter().map(|q| q.errors).sum()
    }

    pub fn soundness_violations(&self) -> usize {
        self.queries.iter().map(|q| q.violations).sum()
    }

    pub fn pathological_missed(&self) -> usize {
        self.pathological.iter().filter(|p| !p.fired).count()
    }

    pub fn to_json(&self) -> Json {
        Json::obj([
            ("bench", Json::str("costcheck")),
            ("queries", Json::Int(self.queries.len() as i64)),
            (
                "ops",
                Json::Int(self.queries.iter().map(|q| q.ops.len() as i64).sum()),
            ),
            (
                "q_error",
                Json::obj([
                    ("p50", Json::Float(self.q_p50)),
                    ("p90", Json::Float(self.q_p90)),
                    ("p99", Json::Float(self.q_p99)),
                    ("max", Json::Float(self.q_max)),
                    ("samples", Json::Int(self.q_samples as i64)),
                ]),
            ),
            (
                "soundness_violations",
                Json::Int(self.soundness_violations() as i64),
            ),
            ("clean_errors", Json::Int(self.clean_errors() as i64)),
            (
                "pathological",
                Json::arr(self.pathological.iter().map(|p| {
                    Json::obj([
                        ("name", Json::str(p.name)),
                        ("expected", Json::str(p.expected)),
                        ("fired", Json::Bool(p.fired)),
                    ])
                })),
            ),
        ])
    }
}

/// One dataset: an executable store plus the logical plans run over it.
struct Dataset {
    store: VineyardGraph,
    schema: GraphSchema,
    plans: Vec<(String, LogicalPlan)>,
}

fn datasets() -> Vec<Dataset> {
    let mut out = Vec::new();

    // ---- LDBC SNB BI 1..=20 ------------------------------------------
    let snb = gs_datagen::snb::generate(&gs_datagen::snb::SnbConfig::lite(10));
    let params = gs_flex::snb::BiParams::default();
    let mut plans = Vec::new();
    for n in 1..=gs_flex::snb::BI_COUNT {
        if let Ok(plan) = gs_flex::snb::bi_plan(n, &snb.data.schema, &snb.labels, &params) {
            plans.push((format!("BI{n}"), plan));
        }
    }
    out.push(Dataset {
        store: VineyardGraph::build(&snb.data).expect("snb store"),
        schema: snb.data.schema.clone(),
        plans,
    });

    // ---- §8 fraud detection (Cypher frontend) ------------------------
    let fraud = gs_datagen::apps::fraud_graph(20, 10, 40, 0, 7);
    let fraud_q = "MATCH (v:Account {id: 0})-[b1:BUY]->(:Item)<-[b2:BUY]-(s:Account) \
                   WHERE s.id IN $SEEDS AND b1.date - b2.date < 3 AND b2.date - b1.date < 3 \
                   WITH v, COUNT(s) AS cnt1 \
                   MATCH (v)-[:KNOWS]-(f:Account), (f)-[b3:BUY]->(:Item)<-[b4:BUY]-(s2:Account) \
                   WHERE s2.id IN $SEEDS \
                   WITH v, cnt1, COUNT(s2) AS cnt2 \
                   WHERE 2 * cnt1 + 1 * cnt2 > 3 \
                   RETURN v";
    let mut fraud_params = HashMap::new();
    fraud_params.insert(
        "SEEDS".to_string(),
        Value::List(vec![Value::Int(1), Value::Int(2)]),
    );
    let fraud_plan =
        gs_lang::parse_cypher(fraud_q, &fraud.data.schema, &fraud_params).expect("fraud parses");
    out.push(Dataset {
        store: VineyardGraph::build(&fraud.data).expect("fraud store"),
        schema: fraud.data.schema.clone(),
        plans: vec![("fraud-cypher".into(), fraud_plan)],
    });

    // ---- §8 cyber monitoring (Gremlin frontend) ----------------------
    let cyber = gs_datagen::apps::cyber_graph(4, 1, 1);
    let cyber_q = "g.V().hasLabel('Host').out('RUNS').out('CONNECTS').dedup()";
    let cyber_plan = gs_lang::parse_gremlin(cyber_q, &cyber.data.schema).expect("cyber parses");
    out.push(Dataset {
        store: VineyardGraph::build(&cyber.data).expect("cyber store"),
        schema: cyber.data.schema.clone(),
        plans: vec![("cyber-gremlin".into(), cyber_plan)],
    });

    // ---- quickstart example (both frontends) -------------------------
    let (data, schema) = quickstart_data();
    let cypher = "MATCH (a:Person {name: 'ann'})-[:KNOWS]-(f:Person)-[:BUY]->(i:Item) \
                  RETURN f.name AS friend, i.price AS price ORDER BY price DESC LIMIT 10";
    let gremlin =
        "g.V().hasLabel('Person').has('name', 'ann').out('KNOWS').out('BUY').values('price')";
    out.push(Dataset {
        store: VineyardGraph::build(&data).expect("quickstart store"),
        schema: schema.clone(),
        plans: vec![
            (
                "quickstart-cypher".into(),
                gs_lang::parse_cypher(cypher, &schema, &HashMap::new()).expect("cypher parses"),
            ),
            (
                "quickstart-gremlin".into(),
                gs_lang::parse_gremlin(gremlin, &schema).expect("gremlin parses"),
            ),
        ],
    });

    out
}

/// The graph from `examples/quickstart.rs`, rebuilt so its queries can be
/// executed here without running the example.
fn quickstart_data() -> (PropertyGraphData, GraphSchema) {
    use gs_graph::value::ValueType;
    let mut schema = GraphSchema::new();
    let person = schema.add_vertex_label(
        "Person",
        &[("name", ValueType::Str), ("age", ValueType::Int)],
    );
    let item = schema.add_vertex_label("Item", &[("price", ValueType::Float)]);
    let knows = schema.add_edge_label("KNOWS", person, person, &[]);
    let buy = schema.add_edge_label("BUY", person, item, &[("date", ValueType::Date)]);
    let mut data = PropertyGraphData::new(schema.clone());
    for (id, name, age) in [(1u64, "ann", 34i64), (2, "bob", 28), (3, "cho", 45)] {
        data.add_vertex(person, id, vec![Value::Str(name.into()), Value::Int(age)]);
    }
    for (id, price) in [(10u64, 9.99f64), (11, 199.0), (12, 3.5)] {
        data.add_vertex(item, id, vec![Value::Float(price)]);
    }
    data.add_edge(knows, 1, 2, vec![]);
    data.add_edge(knows, 2, 1, vec![]);
    data.add_edge(knows, 2, 3, vec![]);
    data.add_edge(knows, 3, 2, vec![]);
    data.add_edge(buy, 2, 10, vec![Value::Date(15000)]);
    data.add_edge(buy, 2, 11, vec![Value::Date(15001)]);
    data.add_edge(buy, 3, 12, vec![Value::Date(15002)]);
    (data, schema)
}

fn cost_and_execute(
    name: &str,
    plan: &LogicalPlan,
    store: &VineyardGraph,
    catalog: &GlogueCatalog,
) -> gs_graph::Result<QueryCost> {
    let optimizer = Optimizer::new(catalog.clone());
    let physical = optimizer.optimize(plan)?;
    let stats = catalog.to_cost_stats();
    let cost = cost_physical(&physical, Some(&stats), &CostBudget::default());
    let (_, actuals): (Vec<Record>, Vec<u64>) = execute_traced(&physical, store)?;
    let mut ops = Vec::with_capacity(actuals.len());
    for (i, (op, actual)) in physical.ops.iter().zip(&actuals).enumerate() {
        let oc = &cost.per_op[i];
        let a = *actual as f64;
        let q_error = if oc.est_rows > 0.0 && a > 0.0 {
            Some((oc.est_rows / a).max(a / oc.est_rows))
        } else {
            None
        };
        ops.push(OpRow {
            op: op.name(),
            est: oc.est_rows,
            lo: oc.interval.lo,
            hi: oc.interval.hi,
            actual: *actual,
            q_error,
            sound: oc.interval.contains(a),
        });
    }
    let violations = ops.iter().filter(|o| !o.sound).count();
    Ok(QueryCost {
        query: name.to_string(),
        errors: cost
            .report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count(),
        violations,
        ops,
    })
}

/// Pathological plans: each must trip exactly its code under a tight
/// budget. Costed against the quickstart catalog (statistics present, so
/// the errors come from the plan shape, not from missing stats).
fn pathological(catalog: &GlogueCatalog) -> Vec<PathologicalCheck> {
    let stats = catalog.to_cost_stats();
    let person = gs_graph::LabelId(0);
    let knows = gs_graph::LabelId(0);
    let scan = || PhysicalOp::Scan {
        label: person,
        predicate: None,
        index_lookup: None,
    };
    let expand = |src| PhysicalOp::Expand {
        src_col: src,
        src_label: person,
        elabel: knows,
        dir: gs_grin::Direction::Both,
        predicate: None,
        out: ExpandOut::VertexFused { label: person },
    };
    let plan = |ops: Vec<PhysicalOp>| PhysicalPlan {
        ops,
        layout: gs_ir::Layout::new(),
    };
    let check = |name, expected, report: CostReport| PathologicalCheck {
        name,
        expected,
        fired: report.has_code(expected),
    };
    vec![
        // two unconnected scans — a predicate touching only one side
        // must NOT count as connecting
        check(
            "cross-product",
            C_CROSS_PRODUCT,
            cost_physical(
                &plan(vec![
                    scan(),
                    scan(),
                    PhysicalOp::Select {
                        predicate: Expr::bin(
                            BinOp::Ne,
                            Expr::VertexId {
                                col: 1,
                                label: person,
                            },
                            Expr::Const(Value::Int(0)),
                        ),
                    },
                ]),
                Some(&stats),
                &CostBudget::default(),
            ),
        ),
        // unbounded multi-hop expansion against a tight row budget
        check(
            "expansion-blowup",
            C_EXPANSION_BLOWUP,
            cost_physical(
                &plan(vec![
                    scan(),
                    expand(0),
                    expand(1),
                    expand(2),
                    expand(3),
                    expand(4),
                    expand(5),
                ]),
                Some(&stats),
                &CostBudget {
                    max_rows: 50.0,
                    ..CostBudget::default()
                },
            ),
        ),
        // a full scan against a one-kilobyte memory budget
        check(
            "memory-hog",
            C_MEMORY_BUDGET,
            cost_physical(
                &plan(vec![scan(), expand(0)]),
                Some(&stats),
                &CostBudget {
                    max_memory_bytes: 64,
                    ..CostBudget::default()
                },
            ),
        ),
    ]
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 1.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs the whole costcheck corpus.
pub fn run() -> CostcheckReport {
    let mut queries = Vec::new();
    let mut quickstart_catalog = None;
    for ds in datasets() {
        let catalog = GlogueCatalog::build(&ds.store, 128);
        for (name, plan) in &ds.plans {
            match cost_and_execute(name, plan, &ds.store, &catalog) {
                Ok(q) => queries.push(q),
                Err(e) => {
                    eprintln!("costcheck: {name} failed to optimize or execute: {e}");
                    queries.push(QueryCost {
                        query: name.clone(),
                        ops: Vec::new(),
                        errors: 1,
                        violations: 0,
                    });
                }
            }
        }
        // quickstart is last; its catalog feeds the pathological plans
        quickstart_catalog = Some(catalog);
        let _ = &ds.schema;
    }
    let pathological = pathological(&quickstart_catalog.expect("at least one dataset"));

    let mut q_errors: Vec<f64> = queries
        .iter()
        .flat_map(|q| q.ops.iter().filter_map(|o| o.q_error))
        .collect();
    q_errors.sort_by(f64::total_cmp);
    CostcheckReport {
        q_p50: percentile(&q_errors, 0.50),
        q_p90: percentile(&q_errors, 0.90),
        q_p99: percentile(&q_errors, 0.99),
        q_max: q_errors.last().copied().unwrap_or(1.0),
        q_samples: q_errors.len(),
        queries,
        pathological,
    }
}

/// CLI entry (`gs-bench costcheck`): runs, writes `BENCH_cost.json`,
/// prints the per-query table, and enforces the `--deny` gate (C-errors
/// in the clean corpus, soundness violations, or a pathological plan
/// whose code did not fire). Returns the process exit code.
pub fn run_cli(deny: bool, out_path: &str) -> i32 {
    let report = run();
    std::fs::write(out_path, report.to_json().render()).expect("write BENCH_cost.json");

    let mut table = TablePrinter::new(&["query", "ops", "est rows", "actual", "max q", "sound"]);
    for q in &report.queries {
        let max_q = q
            .ops
            .iter()
            .filter_map(|o| o.q_error)
            .fold(1.0f64, f64::max);
        let (est, actual) = q.ops.last().map(|o| (o.est, o.actual)).unwrap_or((0.0, 0));
        table.row(vec![
            q.query.clone(),
            q.ops.len().to_string(),
            format!("{est:.1}"),
            actual.to_string(),
            format!("{max_q:.1}"),
            if q.violations == 0 { "yes" } else { "NO" }.to_string(),
        ]);
    }
    for p in &report.pathological {
        table.row(vec![
            p.name.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            p.expected.to_string(),
            if p.fired { "fired" } else { "MISSED" }.to_string(),
        ]);
    }
    table.print();
    println!(
        "\ncostcheck: {} queries, {} op samples, q-error p50 {:.2} p90 {:.2} p99 {:.2} max {:.2}; \
         {} clean-corpus error(s), {} soundness violation(s), {} pathological missed",
        report.queries.len(),
        report.q_samples,
        report.q_p50,
        report.q_p90,
        report.q_p99,
        report.q_max,
        report.clean_errors(),
        report.soundness_violations(),
        report.pathological_missed(),
    );
    let blocking =
        report.clean_errors() + report.soundness_violations() + report.pathological_missed();
    if deny && blocking > 0 {
        eprintln!("costcheck: {blocking} blocking finding(s)");
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate: the clean corpus stays C-error-free, every
    /// actual cardinality falls inside its predicted interval, and each
    /// pathological plan fires exactly its code.
    #[test]
    fn corpus_is_clean_and_sound() {
        let report = run();
        assert!(
            report.queries.len() >= 24,
            "corpus size: {}",
            report.queries.len()
        );
        for q in &report.queries {
            assert_eq!(q.errors, 0, "{} raised C-errors", q.query);
            for o in &q.ops {
                assert!(
                    o.sound,
                    "{}: {} actual {} outside [{}, {}]",
                    q.query, o.op, o.actual, o.lo, o.hi
                );
            }
        }
        for p in &report.pathological {
            assert!(p.fired, "{} did not fire {}", p.name, p.expected);
        }
        assert!(report.q_samples > 0);
        assert!(report.q_p50 >= 1.0 && report.q_p50 <= report.q_max);
    }
}
