/root/repo/target/debug/examples/fraud_detection-b4c0252d5b7fb717.d: examples/fraud_detection.rs Cargo.toml

/root/repo/target/debug/examples/libfraud_detection-b4c0252d5b7fb717.rmeta: examples/fraud_detection.rs Cargo.toml

examples/fraud_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
