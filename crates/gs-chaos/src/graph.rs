//! [`ChaosGraph`] — a fault-wrapping GRIN storage adapter.
//!
//! GRIN's read surface is infallible by design (absent values are `Null`,
//! not errors), so a transient storage fault is modelled the way a real
//! poisoned mmap or torn snapshot read manifests in-process: a panic at
//! the read site, carrying the [`ChaosUnwind`](crate::ChaosUnwind)
//! payload. Callers that promise degradation (the learn sampler's
//! retry/skip path, HiActor's catch-per-job shard loop) catch it; callers
//! without a recovery story crash loudly, which is the point.

use gs_graph::{EId, GraphSchema, LabelId, PropId, VId, Value};
use gs_grin::graph::{AdjEntry, AdjScanFn, PartitionInfo};
use gs_grin::{Capabilities, Direction, GrinGraph};

/// Wraps any GRIN store, injecting transient read faults at every
/// retrieval entry point when a [`FaultPlan`](crate::FaultPlan) with
/// `storage_p > 0` is installed. Without the `chaos` feature the fault
/// hook is an inlined no-op and this is a plain delegating wrapper.
pub struct ChaosGraph<G> {
    inner: G,
    site: &'static str,
}

impl<G: GrinGraph> ChaosGraph<G> {
    /// Wraps `inner`; `site` labels this adapter's faults in diagnostics.
    pub fn new(inner: G, site: &'static str) -> Self {
        Self { inner, site }
    }

    /// Unwraps the adapter.
    pub fn into_inner(self) -> G {
        self.inner
    }

    #[inline]
    fn fault_point(&self) {
        crate::storage_fault_point(self.site);
    }
}

impl<G: GrinGraph> GrinGraph for ChaosGraph<G> {
    fn capabilities(&self) -> Capabilities {
        self.inner.capabilities()
    }

    fn schema(&self) -> &GraphSchema {
        self.inner.schema()
    }

    fn vertex_count(&self, label: LabelId) -> usize {
        self.inner.vertex_count(label)
    }

    fn edge_count(&self, label: LabelId) -> usize {
        self.inner.edge_count(label)
    }

    fn vertices(&self, label: LabelId) -> Box<dyn Iterator<Item = VId> + '_> {
        self.inner.vertices(label)
    }

    fn adjacent(
        &self,
        v: VId,
        vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
    ) -> Box<dyn Iterator<Item = AdjEntry> + '_> {
        self.fault_point();
        self.inner.adjacent(v, vlabel, elabel, dir)
    }

    fn for_each_adjacent(
        &self,
        v: VId,
        vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
        f: &mut dyn FnMut(AdjEntry),
    ) {
        self.fault_point();
        self.inner.for_each_adjacent(v, vlabel, elabel, dir, f);
    }

    fn adjacent_slice(
        &self,
        v: VId,
        vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
    ) -> Option<(&[VId], &[EId])> {
        self.fault_point();
        self.inner.adjacent_slice(v, vlabel, elabel, dir)
    }

    fn degree(&self, v: VId, vlabel: LabelId, elabel: LabelId, dir: Direction) -> usize {
        self.fault_point();
        self.inner.degree(v, vlabel, elabel, dir)
    }

    fn vertex_range(&self, label: LabelId) -> Option<std::ops::Range<u64>> {
        self.inner.vertex_range(label)
    }

    fn scan_adjacency(
        &self,
        vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
        f: &mut AdjScanFn<'_>,
    ) -> bool {
        self.fault_point();
        self.inner.scan_adjacency(vlabel, elabel, dir, f)
    }

    fn vertex_property(&self, label: LabelId, v: VId, prop: PropId) -> Value {
        self.fault_point();
        self.inner.vertex_property(label, v, prop)
    }

    fn edge_property(&self, label: LabelId, e: EId, prop: PropId) -> Value {
        self.fault_point();
        self.inner.edge_property(label, e, prop)
    }

    fn internal_id(&self, label: LabelId, external: u64) -> Option<VId> {
        self.fault_point();
        self.inner.internal_id(label, external)
    }

    fn external_id(&self, label: LabelId, v: VId) -> Option<u64> {
        self.inner.external_id(label, v)
    }

    fn vertices_by_property(&self, label: LabelId, prop: PropId, value: &Value) -> Vec<VId> {
        self.fault_point();
        self.inner.vertices_by_property(label, prop, value)
    }

    fn partition_info(&self) -> Option<PartitionInfo> {
        self.inner.partition_info()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_grin::graph::mock::MockGraph;

    #[test]
    fn delegates_transparently_without_faults() {
        let g = ChaosGraph::new(
            MockGraph::new(10, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]),
            "test.store",
        );
        assert_eq!(g.vertex_count(LabelId(0)), 10);
        assert_eq!(g.degree(VId(0), LabelId(0), LabelId(0), Direction::Out), 1);
        let nbrs: Vec<_> = g
            .adjacent(VId(1), LabelId(0), LabelId(0), Direction::Out)
            .map(|a| a.nbr)
            .collect();
        assert_eq!(nbrs, vec![VId(2)]);
    }
}
