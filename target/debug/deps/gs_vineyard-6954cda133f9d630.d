/root/repo/target/debug/deps/gs_vineyard-6954cda133f9d630.d: crates/gs-vineyard/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgs_vineyard-6954cda133f9d630.rmeta: crates/gs-vineyard/src/lib.rs Cargo.toml

crates/gs-vineyard/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
