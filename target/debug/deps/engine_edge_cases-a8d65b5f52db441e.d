/root/repo/target/debug/deps/engine_edge_cases-a8d65b5f52db441e.d: tests/engine_edge_cases.rs

/root/repo/target/debug/deps/engine_edge_cases-a8d65b5f52db441e: tests/engine_edge_cases.rs

tests/engine_edge_cases.rs:
