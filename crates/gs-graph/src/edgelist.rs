//! Plain edge-list container with the utilities dataset generators and
//! loaders need before topology is frozen into CSR form.

use crate::csr::Csr;
use crate::ids::VId;

/// A growable edge list over `n` vertices.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EdgeList {
    n: usize,
    edges: Vec<(VId, VId)>,
}

impl EdgeList {
    /// Empty list over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Builds from raw pairs, taking the vertex count from the caller.
    pub fn from_pairs(n: usize, pairs: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let edges = pairs
            .into_iter()
            .map(|(s, d)| (VId(s), VId(d)))
            .collect::<Vec<_>>();
        debug_assert!(edges.iter().all(|(s, d)| s.index() < n && d.index() < n));
        Self { n, edges }
    }

    /// Appends an edge.
    #[inline]
    pub fn push(&mut self, src: VId, dst: VId) {
        debug_assert!(src.index() < self.n && dst.index() < self.n);
        self.edges.push((src, dst));
    }

    /// Vertex count.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Edge count.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Edge slice.
    #[inline]
    pub fn edges(&self) -> &[(VId, VId)] {
        &self.edges
    }

    /// Removes duplicate edges and self-loops in place (simple-graph
    /// normalisation used by Graphalytics workloads).
    pub fn dedup_simple(&mut self) {
        self.edges.retain(|(s, d)| s != d);
        self.edges.sort_unstable();
        self.edges.dedup();
    }

    /// Adds the reverse of every edge (undirected closure), then dedups.
    pub fn symmetrize(&mut self) {
        let rev: Vec<_> = self.edges.iter().map(|&(s, d)| (d, s)).collect();
        self.edges.extend(rev);
        self.dedup_simple();
    }

    /// Freezes into CSR topology.
    pub fn to_csr(&self) -> Csr {
        Csr::from_edges(self.n, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_removes_loops_and_dups() {
        let mut el = EdgeList::from_pairs(3, [(0, 1), (1, 1), (0, 1), (2, 0)]);
        el.dedup_simple();
        assert_eq!(el.edges(), &[(VId(0), VId(1)), (VId(2), VId(0))]);
    }

    #[test]
    fn symmetrize_closes_under_reversal() {
        let mut el = EdgeList::from_pairs(3, [(0, 1), (1, 2)]);
        el.symmetrize();
        assert_eq!(el.edge_count(), 4);
        let g = el.to_csr();
        for v in 0..3u64 {
            for &w in g.neighbors(VId(v)) {
                assert!(g.has_edge(w, VId(v)));
            }
        }
    }

    #[test]
    fn to_csr_preserves_counts() {
        let el = EdgeList::from_pairs(4, [(0, 1), (0, 2), (3, 1)]);
        let g = el.to_csr();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
    }
}
