/root/repo/target/debug/deps/gs_gart-25629585ab968ba3.d: crates/gs-gart/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgs_gart-25629585ab968ba3.rmeta: crates/gs-gart/src/lib.rs Cargo.toml

crates/gs-gart/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
